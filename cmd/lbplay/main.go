// Command lbplay runs any of the bundled load balancing strategies on a
// synthetic workload — either through the offline engine or fully
// distributed on the AMT runtime — and prints before/after statistics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"

	"temperedlb"
	"temperedlb/internal/comm/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbplay: ")
	var (
		strat      = flag.String("strategy", "tempered", "tempered | grapevine | greedy | hier | refine")
		ranks      = flag.Int("ranks", 64, "number of ranks")
		tasks      = flag.Int("tasks", 1000, "number of tasks")
		loaded     = flag.Int("loaded", 4, "initially loaded ranks (clustered placement)")
		placement  = flag.String("placement", "clustered", "clustered | uniform | skewed")
		loads      = flag.String("loads", "uniform", "unit | uniform | exp | mixture")
		order      = flag.String("order", "fewest-migrations", "task traversal ordering (tempered)")
		seed       = flag.Int64("seed", 1, "seed")
		dist       = flag.Bool("distributed", false, "run the gossip balancer on the real AMT runtime")
		transport  = flag.String("transport", "memory", "message substrate for -distributed: memory | unix | tcp (unix/tcp run an in-process socket cluster; see cmd/lbnode for multi-process jobs)")
		nodes      = flag.Int("nodes", 2, "socket-cluster node count for -transport=unix|tcp")
		rounds     = flag.Int("rounds", 0, "gossip rounds per iteration (0 = strategy default; cross-transport diffs need -rounds 1)")
		traceOut   = flag.String("trace", "", "write a Chrome trace_event JSON to this file (open in Perfetto); tempered or -distributed runs")
		metricsOut = flag.String("metrics", "", "write runtime metrics in Prometheus text format to this file (-distributed only)")
		faults     = flag.String("faults", "", "inject transport faults, e.g. \"seed=7,drop=0.01,dup=0.01,delay=5ms,slow=3:2ms\" (-distributed only)")
		fanout     = flag.Int("fanout", 4, "arity of the runtime's collective reduction tree (-distributed only)")
		serveAddr  = flag.String("serve", "", "serve live observability HTTP on this address (NDJSON /stream, /metrics, /debug/pprof/) and keep serving after the run until interrupted (-distributed only)")
		framesOut  = flag.String("frames", "", "write the run's frame ring as NDJSON to this file for lbtop -replay (-distributed only)")
		resultOut  = flag.String("result", "", "write rank 0's protocol-determined DistResult as JSON to this file (timing stripped; diffable across transports and processes)")

		service  = flag.Bool("service", false, "run the online balancer service instead of a one-shot rebalance (see cmd/lbserve for the full tool)")
		scenario = flag.String("scenario", "burst", "service workload stream: ramp | diurnal | burst | churn (-service only)")
		phases   = flag.Int("phases", 40, "service phases (-service only)")
		trigger  = flag.String("trigger", "forecast", "service LB trigger: always | every:K | threshold:H | forecast[:headroom=X] (-service only)")
		lbCost   = flag.Float64("lbcost", 20, "cost of one balancer invocation, in load units (-service only)")
	)
	flag.Parse()

	if *service {
		runService(serviceOptions{
			scenario: *scenario, ranks: *ranks, phases: *phases, items: *tasks, seed: *seed,
			trigger: *trigger, lbCost: *lbCost,
			transport: *transport, nodes: *nodes, fanout: *fanout,
			metricsPath: *metricsOut, framesPath: *framesOut, serveAddr: *serveAddr,
		})
		return
	}

	spec := temperedlb.WorkloadSpec{
		NumRanks:      *ranks,
		NumTasks:      *tasks,
		LoadedRanks:   *loaded,
		Seed:          *seed,
		HeavyFraction: 0.2,
	}
	switch *placement {
	case "clustered":
		spec.Placement = temperedlb.PlaceClustered
	case "uniform":
		spec.Placement = temperedlb.PlaceUniform
	case "skewed":
		spec.Placement = temperedlb.PlaceSkewed
	default:
		log.Fatalf("unknown placement %q", *placement)
	}
	switch *loads {
	case "unit":
		spec.Loads = temperedlb.LoadUnit
	case "uniform":
		spec.Loads = temperedlb.LoadUniform
	case "exp":
		spec.Loads = temperedlb.LoadExponential
	case "mixture":
		spec.Loads = temperedlb.LoadMixture
	default:
		log.Fatalf("unknown load model %q", *loads)
	}

	a, err := temperedlb.GenerateWorkload(spec)
	if err != nil {
		log.Fatal(err)
	}

	if *dist {
		runDistributed(distOptions{
			a: a, seed: *seed, rounds: *rounds,
			transport: *transport, nodes: *nodes,
			tracePath: *traceOut, metricsPath: *metricsOut,
			faults: *faults, fanout: *fanout,
			serveAddr: *serveAddr, framesPath: *framesOut, resultPath: *resultOut,
		})
		return
	}
	if *metricsOut != "" {
		log.Fatal("-metrics needs the runtime's registry; combine it with -distributed")
	}
	if *faults != "" {
		log.Fatal("-faults injects transport faults; combine it with -distributed (engine strategies take the -faults grammar via lbaf/empire instead)")
	}
	if *serveAddr != "" || *framesOut != "" {
		log.Fatal("-serve and -frames stream the runtime's frames; combine them with -distributed")
	}
	if *transport != "memory" || *resultOut != "" {
		log.Fatal("-transport and -result drive the runtime; combine them with -distributed")
	}

	var rec *temperedlb.TraceRecorder
	if *traceOut != "" {
		rec = temperedlb.NewTraceRecorder()
	}
	var s temperedlb.Strategy
	switch *strat {
	case "tempered":
		cfg := temperedlb.Tempered()
		cfg.Seed = *seed
		ord, err := temperedlb.ParseOrdering(*order)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Order = ord
		if rec != nil {
			cfg.Tracer = rec
		}
		s = temperedlb.NewTemperedLBWith(cfg)
	case "grapevine":
		s = temperedlb.NewGrapevineLB()
	case "greedy":
		s = temperedlb.NewGreedyLB()
	case "hier":
		s = temperedlb.NewHierLB(4)
	case "refine":
		s = temperedlb.NewRefineLB()
	default:
		log.Fatalf("unknown strategy %q", *strat)
	}

	plan, err := s.Rebalance(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strategy        %s\n", s.Name())
	fmt.Printf("imbalance       %.4f -> %.4f\n", plan.InitialImbalance, plan.FinalImbalance)
	fmt.Printf("migrations      %d tasks, %.2f load units\n", plan.MovedTasks(), plan.MovedLoad)
	fmt.Printf("algorithm cost  %d messages, %d epochs\n", plan.Messages, plan.Epochs)
	if rec != nil {
		events := rec.Events()
		if len(events) == 0 {
			log.Printf("note: strategy %q emits no trace events (only tempered does in engine mode)", *strat)
		}
		writeExport(*traceOut, func(w io.Writer) error {
			return temperedlb.WriteChromeTrace(w, events)
		})
		log.Printf("wrote %d trace events to %s", len(events), *traceOut)
	}
}

// writeExport creates path and streams one exporter into it.
func writeExport(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

// writeResult writes one protocol-determined result as JSON, timing
// stripped so files from different transports and machines diff clean.
func writeResult(path string, res temperedlb.DistributedResult) {
	writeExport(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(res.StripTiming())
	})
	log.Printf("wrote result to %s", path)
}

type distOptions struct {
	a           *temperedlb.Assignment
	seed        int64
	rounds      int
	transport   string
	nodes       int
	tracePath   string
	metricsPath string
	faults      string
	fanout      int
	serveAddr   string
	framesPath  string
	resultPath  string
}

// runDistributed scatters equivalent synthetic objects over a real AMT
// runtime and executes the distributed protocol, optionally with the
// observability stack attached. With -transport=unix or tcp the job
// runs as an in-process socket cluster: one runtime per node, each
// hosting a contiguous rank range behind a partial network, joined by
// real OS sockets — the same topology cmd/lbnode spreads over separate
// processes.
func runDistributed(o distOptions) {
	n := o.a.NumRanks()
	var obsOpts []temperedlb.RuntimeOption
	var rec *temperedlb.TraceRecorder
	if o.tracePath != "" {
		rec = temperedlb.NewTraceRecorder()
		obsOpts = append(obsOpts, temperedlb.WithTracer(rec))
	}
	if o.metricsPath != "" || o.serveAddr != "" {
		obsOpts = append(obsOpts, temperedlb.WithMetrics())
	}
	var stream *temperedlb.Stream
	if o.serveAddr != "" || o.framesPath != "" {
		stream = temperedlb.NewStream(0)
		obsOpts = append(obsOpts, temperedlb.WithStream(stream))
	}

	// Stand up the runtimes: one over everything for the in-memory
	// transport, one per cluster node for the socket transports.
	// Observability (tracer, metrics, stream, serve) attaches to the
	// first runtime — the one hosting rank 0, which publishes the frames.
	var runtimes []*temperedlb.Runtime
	var cluster *wire.Cluster
	switch o.transport {
	case "memory":
		runtimes = []*temperedlb.Runtime{temperedlb.NewRuntime(n,
			append([]temperedlb.RuntimeOption{temperedlb.WithFanout(o.fanout)}, obsOpts...)...)}
	case "unix", "tcp":
		if o.nodes < 1 || o.nodes > n {
			log.Fatalf("-nodes %d: need 1 <= nodes <= ranks (%d)", o.nodes, n)
		}
		var err error
		cluster, err = wire.NewCluster(o.transport, n, o.nodes, uint64(o.seed))
		if err != nil {
			log.Fatal(err)
		}
		defer cluster.Close()
		for i, tr := range cluster.Transports {
			nodeOpts := []temperedlb.RuntimeOption{temperedlb.WithFanout(o.fanout), temperedlb.WithTransport(tr)}
			if i == 0 {
				nodeOpts = append(nodeOpts, obsOpts...) // observability on node 0 only
			}
			runtimes = append(runtimes, temperedlb.NewRuntime(n, nodeOpts...))
		}
		log.Printf("socket cluster: %d nodes over %s, %d ranks", o.nodes, o.transport, n)
	default:
		log.Fatalf("unknown transport %q (want memory, unix or tcp)", o.transport)
	}
	rt0 := runtimes[0]

	if o.serveAddr != "" {
		srv, bound, err := temperedlb.ServeObservability(o.serveAddr, stream, rt0.Metrics())
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("serving observability on http://%s (attach with: lbtop -url http://%s)", bound, bound)
	}
	var faultSpec temperedlb.FaultSpec
	if o.faults != "" {
		sp, err := temperedlb.ParseFaultSpec(o.faults)
		if err != nil {
			log.Fatal(err)
		}
		for _, rt := range runtimes {
			if err := rt.SetFaults(sp); err != nil {
				log.Fatal(err)
			}
		}
		faultSpec = sp
	}

	cfg := temperedlb.Tempered()
	cfg.Trials, cfg.Iterations = 4, 4
	cfg.Seed = o.seed
	if o.rounds > 0 {
		cfg.Rounds = o.rounds
	}
	results := make([]temperedlb.DistributedResult, n)
	type hrt struct {
		rt *temperedlb.Runtime
		h  *temperedlb.LBHandlers
	}
	hrts := make([]hrt, len(runtimes))
	for i, rt := range runtimes {
		hrts[i] = hrt{rt: rt, h: temperedlb.RegisterLBHandlers(rt, 1)}
	}
	done := make(chan struct{}, len(hrts))
	for _, p := range hrts {
		go func(rt *temperedlb.Runtime, h *temperedlb.LBHandlers) {
			defer func() { done <- struct{}{} }()
			rt.Run(func(rc *temperedlb.RankContext) {
				loads := map[temperedlb.ObjectID]float64{}
				for _, task := range o.a.TasksOf(rc.Rank()) {
					id := rc.CreateObject(task.Load) // state: the load itself
					loads[id] = task.Load
				}
				rc.Barrier()
				res, err := temperedlb.RunDistributedLB(rc, h, cfg, loads)
				if err != nil {
					log.Fatal(err)
				}
				results[rc.Rank()] = res
			})
		}(p.rt, p.h)
	}
	for range hrts {
		<-done
	}

	res := results[0]
	migs := 0
	for _, r := range results {
		migs += r.Migrations
	}
	var totalMsgs int64
	for _, rt := range runtimes {
		totalMsgs += rt.TotalMessages()
	}
	switch o.transport {
	case "memory":
		fmt.Printf("strategy        TemperedLB (distributed, %d ranks / %d goroutines)\n", n, n)
	default:
		fmt.Printf("strategy        TemperedLB (distributed, %d ranks over %d %s-socket nodes)\n", n, o.nodes, o.transport)
	}
	fmt.Printf("imbalance       %.4f -> %.4f (best trial %d iter %d)\n",
		res.InitialImbalance, res.FinalImbalance, res.BestTrial, res.BestIteration)
	fmt.Printf("migrations      %d objects actually moved\n", migs)
	fmt.Printf("transport       %d messages total (gossip, transfers, termination, commit)\n", totalMsgs)
	fmt.Printf("collectives     %d-ary reduction tree\n", rt0.Fanout())
	fmt.Printf("protocol cost   %d gossip + %d transfer messages, %.3fs wall clock\n",
		res.GossipMessages, res.TransferMessages, res.ElapsedSeconds)
	if cluster != nil {
		var ws temperedlb.WireStats
		for _, tr := range cluster.Transports {
			st := tr.WireStats()
			ws.FramesOut += st.FramesOut
			ws.BytesOut += st.BytesOut
			ws.Redials += st.Redials
		}
		fmt.Printf("wire            %d frames / %d bytes shipped between nodes, %d redials\n",
			ws.FramesOut, ws.BytesOut, ws.Redials)
	}
	if !faultSpec.Empty() {
		var st temperedlb.FaultStats
		for _, rt := range runtimes {
			s := rt.FaultStats()
			st.Dropped += s.Dropped
			st.Duplicated += s.Duplicated
			st.Retries += s.Retries
			st.DupDrops += s.DupDrops
		}
		fmt.Printf("faults          %s\n", faultSpec)
		fmt.Printf("fault damage    %d dropped, %d duplicated; recovery: %d retries, %d dup discards\n",
			st.Dropped, st.Duplicated, st.Retries, st.DupDrops)
	}
	if o.resultPath != "" {
		writeResult(o.resultPath, res)
	}
	if rec != nil {
		events := rec.Events()
		writeExport(o.tracePath, func(w io.Writer) error {
			return temperedlb.WriteChromeTrace(w, events)
		})
		log.Printf("wrote %d trace events to %s (open in ui.perfetto.dev)", len(events), o.tracePath)
	}
	if o.metricsPath != "" {
		writeExport(o.metricsPath, func(w io.Writer) error {
			return temperedlb.WritePrometheus(w, rt0.Metrics())
		})
		log.Printf("wrote metrics to %s", o.metricsPath)
	}
	if o.framesPath != "" {
		frames := stream.Frames()
		writeExport(o.framesPath, func(w io.Writer) error {
			return temperedlb.WriteSnapshots(w, frames)
		})
		log.Printf("wrote %d frames to %s (replay with: lbtop -replay %s)",
			len(frames), o.framesPath, o.framesPath)
	}
	if o.serveAddr != "" {
		log.Print("run finished; still serving (Ctrl-C to exit)")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
}

type serviceOptions struct {
	scenario    string
	ranks       int
	phases      int
	items       int
	seed        int64
	trigger     string
	lbCost      float64
	transport   string
	nodes       int
	fanout      int
	metricsPath string
	framesPath  string
	serveAddr   string
}

// runService hosts the online balancer service (internal/serve) on the
// chosen transport: scenario phases stream in, the load model forecasts
// the next one, and the trigger decides when the distributed protocol
// is worth invoking. The trigger log printed to stdout is
// rank-identical and byte-stable across transports; cmd/lbserve is the
// dedicated tool with record and tune modes on top of the same engine.
func runService(o serviceOptions) {
	kind, err := temperedlb.ParseScenarioKind(o.scenario)
	if err != nil {
		log.Fatal(err)
	}
	ts, err := temperedlb.ParseTrigger(o.trigger)
	if err != nil {
		log.Fatal(err)
	}
	cfg := temperedlb.ServiceConfig{
		Scenario: temperedlb.ScenarioSpec{
			Kind: kind, Ranks: o.ranks, Phases: o.phases, Items: o.items, Seed: o.seed,
		},
		Trigger: ts,
		LBCost:  o.lbCost,
	}

	var obsOpts []temperedlb.RuntimeOption
	if o.metricsPath != "" || o.serveAddr != "" {
		obsOpts = append(obsOpts, temperedlb.WithMetrics())
	}
	var stream *temperedlb.Stream
	if o.serveAddr != "" || o.framesPath != "" {
		stream = temperedlb.NewStream(0)
		obsOpts = append(obsOpts, temperedlb.WithStream(stream))
	}

	var runtimes []*temperedlb.Runtime
	switch o.transport {
	case "memory":
		runtimes = []*temperedlb.Runtime{temperedlb.NewRuntime(o.ranks,
			append([]temperedlb.RuntimeOption{temperedlb.WithFanout(o.fanout)}, obsOpts...)...)}
	case "unix", "tcp":
		if o.nodes < 1 || o.nodes > o.ranks {
			log.Fatalf("-nodes %d: need 1 <= nodes <= ranks (%d)", o.nodes, o.ranks)
		}
		cluster, err := wire.NewCluster(o.transport, o.ranks, o.nodes, uint64(o.seed)+0x5e12e)
		if err != nil {
			log.Fatal(err)
		}
		defer cluster.Close()
		for i, tr := range cluster.Transports {
			nodeOpts := []temperedlb.RuntimeOption{temperedlb.WithFanout(o.fanout), temperedlb.WithTransport(tr)}
			if i == 0 {
				nodeOpts = append(nodeOpts, obsOpts...)
			}
			runtimes = append(runtimes, temperedlb.NewRuntime(o.ranks, nodeOpts...))
		}
		log.Printf("socket cluster: %d nodes over %s, %d ranks", o.nodes, o.transport, o.ranks)
	default:
		log.Fatalf("unknown transport %q (want memory, unix or tcp)", o.transport)
	}
	rt0 := runtimes[0]

	if o.serveAddr != "" {
		srv, bound, err := temperedlb.ServeObservability(o.serveAddr, stream, rt0.Metrics())
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("serving observability on http://%s (attach with: lbtop -url http://%s)", bound, bound)
	}

	results := make([]temperedlb.ServiceResult, o.ranks)
	done := make(chan struct{}, len(runtimes))
	for _, rt := range runtimes {
		h := temperedlb.RegisterLBHandlers(rt, 1)
		go func(rt *temperedlb.Runtime, h *temperedlb.LBHandlers) {
			defer func() { done <- struct{}{} }()
			rt.Run(func(rc *temperedlb.RankContext) {
				res, err := temperedlb.RunService(rc, h, cfg)
				if err != nil {
					log.Fatal(err)
				}
				results[rc.Rank()] = res
			})
		}(rt, h)
	}
	for range runtimes {
		<-done
	}

	res := results[0]
	res.LocalMigrations = 0
	for _, r := range results {
		res.LocalMigrations += r.LocalMigrations
	}
	if err := temperedlb.WriteServiceLog(os.Stdout, cfg, res); err != nil {
		log.Fatal(err)
	}
	if o.metricsPath != "" {
		writeExport(o.metricsPath, func(w io.Writer) error {
			return temperedlb.WritePrometheus(w, rt0.Metrics())
		})
		log.Printf("wrote metrics to %s", o.metricsPath)
	}
	if o.framesPath != "" {
		frames := stream.Frames()
		writeExport(o.framesPath, func(w io.Writer) error {
			return temperedlb.WriteSnapshots(w, frames)
		})
		log.Printf("wrote %d frames to %s (replay with: lbtop -replay %s)",
			len(frames), o.framesPath, o.framesPath)
	}
	if o.serveAddr != "" {
		log.Print("service finished; still serving (Ctrl-C to exit)")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
}
