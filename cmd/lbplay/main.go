// Command lbplay runs any of the bundled load balancing strategies on a
// synthetic workload — either through the offline engine or fully
// distributed on the AMT runtime — and prints before/after statistics.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"os/signal"

	"temperedlb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbplay: ")
	var (
		strat      = flag.String("strategy", "tempered", "tempered | grapevine | greedy | hier | refine")
		ranks      = flag.Int("ranks", 64, "number of ranks")
		tasks      = flag.Int("tasks", 1000, "number of tasks")
		loaded     = flag.Int("loaded", 4, "initially loaded ranks (clustered placement)")
		placement  = flag.String("placement", "clustered", "clustered | uniform | skewed")
		loads      = flag.String("loads", "uniform", "unit | uniform | exp | mixture")
		order      = flag.String("order", "fewest-migrations", "task traversal ordering (tempered)")
		seed       = flag.Int64("seed", 1, "seed")
		dist       = flag.Bool("distributed", false, "run the gossip balancer on the real AMT runtime")
		traceOut   = flag.String("trace", "", "write a Chrome trace_event JSON to this file (open in Perfetto); tempered or -distributed runs")
		metricsOut = flag.String("metrics", "", "write runtime metrics in Prometheus text format to this file (-distributed only)")
		faults     = flag.String("faults", "", "inject transport faults, e.g. \"seed=7,drop=0.01,dup=0.01,delay=5ms,slow=3:2ms\" (-distributed only)")
		fanout     = flag.Int("fanout", 4, "arity of the runtime's collective reduction tree (-distributed only)")
		serveAddr  = flag.String("serve", "", "serve live observability HTTP on this address (NDJSON /stream, /metrics, /debug/pprof/) and keep serving after the run until interrupted (-distributed only)")
		framesOut  = flag.String("frames", "", "write the run's frame ring as NDJSON to this file for lbtop -replay (-distributed only)")
	)
	flag.Parse()

	spec := temperedlb.WorkloadSpec{
		NumRanks:      *ranks,
		NumTasks:      *tasks,
		LoadedRanks:   *loaded,
		Seed:          *seed,
		HeavyFraction: 0.2,
	}
	switch *placement {
	case "clustered":
		spec.Placement = temperedlb.PlaceClustered
	case "uniform":
		spec.Placement = temperedlb.PlaceUniform
	case "skewed":
		spec.Placement = temperedlb.PlaceSkewed
	default:
		log.Fatalf("unknown placement %q", *placement)
	}
	switch *loads {
	case "unit":
		spec.Loads = temperedlb.LoadUnit
	case "uniform":
		spec.Loads = temperedlb.LoadUniform
	case "exp":
		spec.Loads = temperedlb.LoadExponential
	case "mixture":
		spec.Loads = temperedlb.LoadMixture
	default:
		log.Fatalf("unknown load model %q", *loads)
	}

	a, err := temperedlb.GenerateWorkload(spec)
	if err != nil {
		log.Fatal(err)
	}

	if *dist {
		runDistributed(a, *seed, *traceOut, *metricsOut, *faults, *fanout, *serveAddr, *framesOut)
		return
	}
	if *metricsOut != "" {
		log.Fatal("-metrics needs the runtime's registry; combine it with -distributed")
	}
	if *faults != "" {
		log.Fatal("-faults injects transport faults; combine it with -distributed (engine strategies take the -faults grammar via lbaf/empire instead)")
	}
	if *serveAddr != "" || *framesOut != "" {
		log.Fatal("-serve and -frames stream the runtime's frames; combine them with -distributed")
	}

	var rec *temperedlb.TraceRecorder
	if *traceOut != "" {
		rec = temperedlb.NewTraceRecorder()
	}
	var s temperedlb.Strategy
	switch *strat {
	case "tempered":
		cfg := temperedlb.Tempered()
		cfg.Seed = *seed
		ord, err := temperedlb.ParseOrdering(*order)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Order = ord
		if rec != nil {
			cfg.Tracer = rec
		}
		s = temperedlb.NewTemperedLBWith(cfg)
	case "grapevine":
		s = temperedlb.NewGrapevineLB()
	case "greedy":
		s = temperedlb.NewGreedyLB()
	case "hier":
		s = temperedlb.NewHierLB(4)
	case "refine":
		s = temperedlb.NewRefineLB()
	default:
		log.Fatalf("unknown strategy %q", *strat)
	}

	plan, err := s.Rebalance(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strategy        %s\n", s.Name())
	fmt.Printf("imbalance       %.4f -> %.4f\n", plan.InitialImbalance, plan.FinalImbalance)
	fmt.Printf("migrations      %d tasks, %.2f load units\n", plan.MovedTasks(), plan.MovedLoad)
	fmt.Printf("algorithm cost  %d messages, %d epochs\n", plan.Messages, plan.Epochs)
	if rec != nil {
		events := rec.Events()
		if len(events) == 0 {
			log.Printf("note: strategy %q emits no trace events (only tempered does in engine mode)", *strat)
		}
		writeExport(*traceOut, func(w io.Writer) error {
			return temperedlb.WriteChromeTrace(w, events)
		})
		log.Printf("wrote %d trace events to %s", len(events), *traceOut)
	}
}

// writeExport creates path and streams one exporter into it.
func writeExport(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

// runDistributed scatters equivalent synthetic objects over a real AMT
// runtime and executes the distributed protocol, optionally with the
// observability stack attached.
func runDistributed(a *temperedlb.Assignment, seed int64, tracePath, metricsPath, faults string, fanout int, serveAddr, framesPath string) {
	n := a.NumRanks()
	opts := []temperedlb.RuntimeOption{temperedlb.WithFanout(fanout)}
	var rec *temperedlb.TraceRecorder
	if tracePath != "" {
		rec = temperedlb.NewTraceRecorder()
		opts = append(opts, temperedlb.WithTracer(rec))
	}
	if metricsPath != "" || serveAddr != "" {
		opts = append(opts, temperedlb.WithMetrics())
	}
	var stream *temperedlb.Stream
	if serveAddr != "" || framesPath != "" {
		stream = temperedlb.NewStream(0)
		opts = append(opts, temperedlb.WithStream(stream))
	}
	rt := temperedlb.NewRuntime(n, opts...)
	if serveAddr != "" {
		srv, bound, err := temperedlb.ServeObservability(serveAddr, stream, rt.Metrics())
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("serving observability on http://%s (attach with: lbtop -url http://%s)", bound, bound)
	}
	var faultSpec temperedlb.FaultSpec
	if faults != "" {
		sp, err := temperedlb.ParseFaultSpec(faults)
		if err != nil {
			log.Fatal(err)
		}
		if err := rt.SetFaults(sp); err != nil {
			log.Fatal(err)
		}
		faultSpec = sp
	}
	h := temperedlb.RegisterLBHandlers(rt, 1)
	results := make([]temperedlb.DistributedResult, n)
	rt.Run(func(rc *temperedlb.RankContext) {
		rng := rand.New(rand.NewSource(seed + int64(rc.Rank())))
		loads := map[temperedlb.ObjectID]float64{}
		for _, task := range a.TasksOf(rc.Rank()) {
			id := rc.CreateObject(task.Load + rng.Float64()*0) // state: the load itself
			loads[id] = task.Load
		}
		rc.Barrier()
		cfg := temperedlb.Tempered()
		cfg.Trials, cfg.Iterations = 4, 4
		cfg.Seed = seed
		res, err := temperedlb.RunDistributedLB(rc, h, cfg, loads)
		if err != nil {
			log.Fatal(err)
		}
		results[rc.Rank()] = res
	})
	res := results[0]
	migs := 0
	for _, r := range results {
		migs += r.Migrations
	}
	fmt.Printf("strategy        TemperedLB (distributed, %d ranks / %d goroutines)\n", n, n)
	fmt.Printf("imbalance       %.4f -> %.4f (best trial %d iter %d)\n",
		res.InitialImbalance, res.FinalImbalance, res.BestTrial, res.BestIteration)
	fmt.Printf("migrations      %d objects actually moved\n", migs)
	fmt.Printf("transport       %d messages total (gossip, transfers, termination, commit)\n", rt.TotalMessages())
	fmt.Printf("collectives     %d-ary reduction tree\n", rt.Fanout())
	fmt.Printf("protocol cost   %d gossip + %d transfer messages, %.3fs wall clock\n",
		res.GossipMessages, res.TransferMessages, res.ElapsedSeconds)
	if !faultSpec.Empty() {
		st := rt.FaultStats()
		fmt.Printf("faults          %s\n", faultSpec)
		fmt.Printf("fault damage    %d dropped, %d duplicated; recovery: %d retries, %d dup discards\n",
			st.Dropped, st.Duplicated, st.Retries, st.DupDrops)
	}
	if rec != nil {
		events := rec.Events()
		writeExport(tracePath, func(w io.Writer) error {
			return temperedlb.WriteChromeTrace(w, events)
		})
		log.Printf("wrote %d trace events to %s (open in ui.perfetto.dev)", len(events), tracePath)
	}
	if metricsPath != "" {
		writeExport(metricsPath, func(w io.Writer) error {
			return temperedlb.WritePrometheus(w, rt.Metrics())
		})
		log.Printf("wrote metrics to %s", metricsPath)
	}
	if framesPath != "" {
		frames := stream.Frames()
		writeExport(framesPath, func(w io.Writer) error {
			return temperedlb.WriteSnapshots(w, frames)
		})
		log.Printf("wrote %d frames to %s (replay with: lbtop -replay %s)",
			len(frames), framesPath, framesPath)
	}
	if serveAddr != "" {
		log.Print("run finished; still serving (Ctrl-C to exit)")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
}
