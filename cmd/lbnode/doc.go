// Command lbnode is the multi-process deployment shape of the
// distributed TemperedLB protocol: where `lbplay -distributed` hosts
// every rank as a goroutine in one process, lbnode hosts one contiguous
// rank range per OS process and joins the processes over TCP or
// Unix-domain sockets (internal/comm/wire). N lbnode processes with
// matching -ranks/-nodes/-seed flags form one balancing job — the
// paper's picture of an MPI job spanning nodes, with the AMT runtime's
// epochs, termination detection, tree collectives and migrations
// running unchanged over the wire. The cross-transport identity test
// and `make wire-smoke` pin down that this changes no protocol
// outcome: the DistResult is bit-identical to the single-process run.
//
// Rendezvous is either static (-peers file of "<node> <addr>" lines,
// addresses fixed up front) or dynamic (-coord pointing at a running
// cmd/lbcoord, which collects every node's bound address and hands
// back the full map). Dial backoff tolerates processes starting in any
// order.
//
// # Concurrency
//
// The process runs one goroutine per local rank (the runtime's
// contract), one writer goroutine per peer process, and one reader
// goroutine per inbound connection; the reader injects decoded
// messages into the same per-rank inboxes a single-process run uses,
// so the protocol stack above observes no difference. Shutdown is the
// transport's close-drain: queued sends flush before the connection
// drops, and the process keeps accepting inbound traffic until every
// peer has said goodbye (bounded by the drain timeout).
package main
