// Command lbnode hosts one process's share of a multi-process
// distributed load balancing job: a contiguous range of ranks behind a
// socket transport. Start N lbnode processes with the same workload
// flags and matching -ranks/-nodes, give each a distinct -node index,
// and point them at each other with either a static -peers file or a
// rendezvous coordinator (-coord, see cmd/lbcoord); together they run
// exactly the protocol a single-process `lbplay -distributed` runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"time"

	"temperedlb"
	"temperedlb/internal/comm/wire"
)

func main() {
	log.SetFlags(0)
	var (
		// Job geometry and rendezvous.
		ranks     = flag.Int("ranks", 12, "total ranks across every node of the job (must match on all nodes)")
		nodes     = flag.Int("nodes", 2, "number of lbnode processes in the job (must match on all nodes)")
		node      = flag.Int("node", -1, "this process's node index in [0,nodes)")
		transport = flag.String("transport", "tcp", "socket flavor: tcp | unix")
		listen    = flag.String("listen", "", "address to listen on: host:port for tcp (default 127.0.0.1:0), socket path for unix (required)")
		peersFile = flag.String("peers", "", "static rendezvous: file of \"<node> <addr>\" lines covering every node")
		coordAddr = flag.String("coord", "", "coordinator rendezvous: host:port of a running lbcoord")
		jobID     = flag.Uint64("jobid", 0, "job id guarding against cross-job connections (must match on all nodes)")
		timeout   = flag.Duration("timeout", 30*time.Second, "rendezvous and peer-connect timeout")

		// Workload (must match on all nodes: every node derives the same
		// deterministic assignment and instantiates only its local ranks).
		tasks     = flag.Int("tasks", 1000, "number of tasks")
		loaded    = flag.Int("loaded", 4, "initially loaded ranks (clustered placement)")
		placement = flag.String("placement", "clustered", "clustered | uniform | skewed")
		loads     = flag.String("loads", "uniform", "unit | uniform | exp | mixture")
		seed      = flag.Int64("seed", 1, "seed (must match on all nodes)")

		// Protocol knobs (must match on all nodes).
		fanout = flag.Int("fanout", 4, "arity of the collective reduction tree")
		rounds = flag.Int("rounds", 0, "gossip rounds per iteration (0 = strategy default; cross-transport diffs need -rounds 1)")
		faults = flag.String("faults", "", "inject transport faults on this node's sends, e.g. \"seed=7,drop=0.01,delay=5ms\"")

		// Observability and output.
		serveAddr  = flag.String("serve", "", "serve live observability HTTP on this address; frames appear on node 0 (the rank-0 publisher), metrics on every node")
		metricsOut = flag.String("metrics", "", "write this node's runtime metrics in Prometheus text format to this file")
		resultOut  = flag.String("result", "", "write the first local rank's protocol-determined DistResult as JSON (timing stripped; diffable across transports and processes)")
		verbose    = flag.Bool("v", false, "log connection lifecycle events")
	)
	flag.Parse()
	log.SetPrefix(fmt.Sprintf("lbnode %d: ", *node))

	if err := validateGeometry(*ranks, *nodes, *node, *transport, *listen, *peersFile, *coordAddr); err != nil {
		log.Fatal(err)
	}

	spec := temperedlb.WorkloadSpec{
		NumRanks:      *ranks,
		NumTasks:      *tasks,
		LoadedRanks:   *loaded,
		Seed:          *seed,
		HeavyFraction: 0.2,
	}
	switch *placement {
	case "clustered":
		spec.Placement = temperedlb.PlaceClustered
	case "uniform":
		spec.Placement = temperedlb.PlaceUniform
	case "skewed":
		spec.Placement = temperedlb.PlaceSkewed
	default:
		log.Fatalf("unknown placement %q", *placement)
	}
	switch *loads {
	case "unit":
		spec.Loads = temperedlb.LoadUnit
	case "uniform":
		spec.Loads = temperedlb.LoadUniform
	case "exp":
		spec.Loads = temperedlb.LoadExponential
	case "mixture":
		spec.Loads = temperedlb.LoadMixture
	default:
		log.Fatalf("unknown load model %q", *loads)
	}
	a, err := temperedlb.GenerateWorkload(spec)
	if err != nil {
		log.Fatal(err)
	}

	cfg := wire.Config{
		Network: *transport,
		Ranks:   *ranks, Nodes: *nodes, Self: *node,
		Listen: *listen, JobID: *jobID,
		ConnectTimeout: *timeout,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	tr, err := wire.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()
	lo, hi := tr.LocalRange()
	log.Printf("listening on %s (%s), hosting ranks [%d,%d) of %d", tr.Addr(), *transport, lo, hi, *ranks)

	var specs []wire.NodeSpec
	if *peersFile != "" {
		specs, err = wire.ParsePeersFile(*peersFile, *ranks, *nodes)
	} else {
		self := wire.NodeSpec{Node: *node, Lo: lo, Hi: hi, Addr: tr.Addr()}
		specs, err = wire.Rendezvous("tcp", *coordAddr, self, *timeout)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.Connect(specs); err != nil {
		log.Fatal(err)
	}
	log.Printf("connected to %d peers", *nodes-1)

	opts := []temperedlb.RuntimeOption{
		temperedlb.WithFanout(*fanout),
		temperedlb.WithTransport(tr),
	}
	if *metricsOut != "" || *serveAddr != "" {
		opts = append(opts, temperedlb.WithMetrics())
	}
	var stream *temperedlb.Stream
	if *serveAddr != "" {
		stream = temperedlb.NewStream(0)
		opts = append(opts, temperedlb.WithStream(stream))
	}
	rt := temperedlb.NewRuntime(*ranks, opts...)
	if *serveAddr != "" {
		srv, bound, err := temperedlb.ServeObservability(*serveAddr, stream, rt.Metrics())
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("serving observability on http://%s (attach with: lbtop -url http://%s)", bound, bound)
	}
	if *faults != "" {
		sp, err := temperedlb.ParseFaultSpec(*faults)
		if err != nil {
			log.Fatal(err)
		}
		if err := rt.SetFaults(sp); err != nil {
			log.Fatal(err)
		}
	}

	lbCfg := temperedlb.Tempered()
	lbCfg.Trials, lbCfg.Iterations = 4, 4
	lbCfg.Seed = *seed
	if *rounds > 0 {
		lbCfg.Rounds = *rounds
	}
	h := temperedlb.RegisterLBHandlers(rt, 1)
	results := make([]temperedlb.DistributedResult, *ranks)
	start := time.Now()
	rt.Run(func(rc *temperedlb.RankContext) {
		loads := map[temperedlb.ObjectID]float64{}
		for _, task := range a.TasksOf(rc.Rank()) {
			id := rc.CreateObject(task.Load) // state: the load itself
			loads[id] = task.Load
		}
		rc.Barrier()
		res, err := temperedlb.RunDistributedLB(rc, h, lbCfg, loads)
		if err != nil {
			log.Fatal(err)
		}
		results[rc.Rank()] = res
	})
	if err := tr.Err(); err != nil {
		log.Fatalf("transport failed: %v", err)
	}

	res := results[lo]
	migs := 0
	for r := lo; r < hi; r++ {
		migs += results[r].Migrations
	}
	st := tr.WireStats()
	fmt.Printf("node            %d of %d, ranks [%d,%d) of %d, %s transport\n", *node, *nodes, lo, hi, *ranks, *transport)
	fmt.Printf("imbalance       %.4f -> %.4f (best trial %d iter %d)\n",
		res.InitialImbalance, res.FinalImbalance, res.BestTrial, res.BestIteration)
	fmt.Printf("migrations      %d objects shipped out by this node's ranks\n", migs)
	fmt.Printf("wire            %d frames / %d bytes out, %d frames / %d bytes in, %d peers, %d redials\n",
		st.FramesOut, st.BytesOut, st.FramesIn, st.BytesIn, st.Peers, st.Redials)
	fmt.Printf("wall clock      %.3fs including rendezvous and drain\n", time.Since(start).Seconds())

	if *resultOut != "" {
		writeExport(*resultOut, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(res.StripTiming())
		})
		log.Printf("wrote rank %d result to %s", lo, *resultOut)
	}
	if *metricsOut != "" {
		writeExport(*metricsOut, func(w io.Writer) error {
			return temperedlb.WritePrometheus(w, rt.Metrics())
		})
		log.Printf("wrote metrics to %s", *metricsOut)
	}
	if *serveAddr != "" {
		log.Print("run finished; still serving (Ctrl-C to exit)")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
}

// validateGeometry rejects inconsistent job geometry and rendezvous
// flags up front, with errors that name the fix — every one of these
// used to surface as a late failure mid-rendezvous (a panic in
// SplitRanks, a listen error, or a silent hang waiting for a peer set
// that can never agree).
func validateGeometry(ranks, nodes, node int, transport, listen, peersFile, coordAddr string) error {
	if ranks < 1 {
		return fmt.Errorf("-ranks %d: a job needs at least one rank", ranks)
	}
	if nodes < 1 {
		return fmt.Errorf("-nodes %d: a job needs at least one process", nodes)
	}
	if ranks < nodes {
		return fmt.Errorf("-ranks %d < -nodes %d: every node hosts at least one rank, so ranks must be >= nodes", ranks, nodes)
	}
	if node < 0 || node >= nodes {
		return fmt.Errorf("-node %d outside [0,%d); every process needs a distinct index", node, nodes)
	}
	switch transport {
	case "tcp":
	case "unix":
		if listen == "" {
			return fmt.Errorf("-transport unix needs an explicit -listen socket path")
		}
	default:
		return fmt.Errorf("-transport %q: want tcp or unix", transport)
	}
	if peersFile != "" && coordAddr != "" {
		return fmt.Errorf("-peers and -coord are both set; they are competing rendezvous mechanisms, pick one")
	}
	if peersFile == "" && coordAddr == "" {
		return fmt.Errorf("no rendezvous configured: give either -peers <file> (static) or -coord <host:port> (lbcoord)")
	}
	return nil
}

// writeExport creates path and streams one exporter into it.
func writeExport(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}
