package main

import (
	"strings"
	"testing"
)

func TestValidateGeometry(t *testing.T) {
	type args struct {
		ranks, nodes, node                  int
		transport, listen, peers, coordAddr string
	}
	ok := args{ranks: 12, nodes: 2, node: 0, transport: "tcp", peers: "peers.txt"}
	cases := []struct {
		name    string
		mutate  func(*args)
		wantErr string // substring; empty means valid
	}{
		{"valid static tcp", func(a *args) {}, ""},
		{"valid coord unix", func(a *args) {
			a.transport, a.listen = "unix", "/tmp/lb.sock"
			a.peers, a.coordAddr = "", "127.0.0.1:9999"
		}, ""},
		{"single node job", func(a *args) { a.nodes, a.node = 1, 0 }, ""},
		{"zero ranks", func(a *args) { a.ranks = 0 }, "-ranks 0"},
		{"negative ranks", func(a *args) { a.ranks = -3 }, "-ranks -3"},
		{"zero nodes", func(a *args) { a.nodes = 0 }, "-nodes 0"},
		{"ranks below nodes", func(a *args) { a.ranks, a.nodes = 2, 5 }, "ranks must be >= nodes"},
		{"node unset", func(a *args) { a.node = -1 }, "outside [0,2)"},
		{"node too high", func(a *args) { a.node = 2 }, "outside [0,2)"},
		{"unknown transport", func(a *args) { a.transport = "quic" }, `-transport "quic"`},
		{"unix without listen", func(a *args) { a.transport = "unix" }, "-listen socket path"},
		{"both rendezvous", func(a *args) { a.coordAddr = "127.0.0.1:9999" }, "pick one"},
		{"no rendezvous", func(a *args) { a.peers = "" }, "no rendezvous configured"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := ok
			tc.mutate(&a)
			err := validateGeometry(a.ranks, a.nodes, a.node, a.transport, a.listen, a.peers, a.coordAddr)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid geometry rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted; want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
