// Command lbcoord is the rendezvous coordinator for multi-process
// lbnode jobs: it listens on a well-known address, waits until every
// node of the job has announced itself, then hands each the complete
// rank→address map and exits.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"temperedlb/internal/comm/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbcoord: ")
	var (
		nodes   = flag.Int("nodes", 2, "number of lbnode processes to wait for")
		listen  = flag.String("listen", "127.0.0.1:9099", "address to listen on (lbnode -coord points here)")
		timeout = flag.Duration("timeout", 60*time.Second, "give up if the job has not fully checked in after this long")
	)
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen %s: %v (address already in use?)", *listen, err)
	}
	log.Printf("waiting for %d nodes on %s", *nodes, ln.Addr())

	specs, err := wire.ServeRendezvous(ln, *nodes, *timeout)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range specs {
		fmt.Printf("node %d  ranks [%d,%d)  %s\n", s.Node, s.Lo, s.Hi, s.Addr)
	}
	log.Printf("distributed the map to %d nodes; done", *nodes)
}
