// Command lbcoord solves multi-process startup's chicken-and-egg: an
// lbnode job needs every process to know every other's listen address
// before the transport mesh can form, but with ephemeral ports
// (tcp :0) no process knows its address until it has bound. lbcoord is
// the one well-known address the operator chooses; each lbnode
// announces its node index, rank range and bound address there, and
// once all -nodes processes have checked in, every one receives the
// complete, sorted map and the coordinator exits. It carries no
// protocol state and plays no part in the run itself — jobs with fixed
// port assignments can use a static -peers file instead and skip the
// coordinator entirely.
//
// # Concurrency
//
// Single-threaded accept loop, one job per invocation: connections are
// handled sequentially (a rendezvous exchanges two JSON lines per
// node), duplicate or out-of-range node indices are refused without
// disturbing the nodes already checked in, and the whole wait is
// bounded by -timeout.
package main
