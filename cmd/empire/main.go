// Command empire runs the EMPIRE-like PIC benchmark across the paper's
// five configurations and emits the data behind Figs. 2, 3 and 4a–d.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"temperedlb/internal/comm"
	"temperedlb/internal/core"
	"temperedlb/internal/empire"
	"temperedlb/internal/lbaf"
	"temperedlb/internal/mesh"
	"temperedlb/internal/obs"
	"temperedlb/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("empire: ")
	var (
		exp        = flag.String("exp", "all", "experiment: fig2 | fig3 | fig4a | fig4b | fig4c | fig4d | all")
		scale      = flag.String("scale", "full", "full (paper scale, 400 ranks) | small (test scale)")
		steps      = flag.Int("steps", 0, "override timestep count (0 = config default)")
		trials     = flag.Int("trials", 0, "override TemperedLB trials (0 = paper's 10)")
		iters      = flag.Int("iters", 0, "override TemperedLB iterations (0 = paper's 8)")
		rounds     = flag.Int("k", 3, "gossip rounds for the distributed balancers (~log_f P)")
		every      = flag.Int("every", 0, "series sampling stride (0 = auto)")
		seed       = flag.Int64("seed", 1, "physics seed")
		csvDir     = flag.String("csv", "", "also dump per-step series as CSV files into this directory")
		plot       = flag.Bool("plot", false, "render ASCII charts of the fig4a/fig4c series")
		dumpStep   = flag.Int("dumpstep", 0, "run the physics to this step and dump the color loads as a JSON workload trace (requires -dumpfile)")
		dumpFile   = flag.String("dumpfile", "", "trace output path for -dumpstep")
		traceOut   = flag.String("trace", "", "write the virtual per-step timeline as Chrome trace_event JSON to this file (one track per configuration; open in Perfetto)")
		metricsOut = flag.String("metrics", "", "write per-configuration summary metrics in Prometheus text format to this file")
		workers    = flag.Int("workers", 0, "concurrent tracker goroutines per step (0 = GOMAXPROCS, 1 = serial); output is identical at any worker count")
		faults     = flag.String("faults", "", "inject gossip transport faults in the simulated balancers, e.g. \"seed=7,drop=0.05,dup=0.02,delay=5ms,slow=3:2ms\" (retry knobs are distributed-only no-ops)")
		serveAddr  = flag.String("serve", "", "serve live observability HTTP on this address: every tracker publishes one frame per simulated step (watch with lbtop -url)")
	)
	flag.Parse()

	cfg := empire.Default()
	if *scale == "small" {
		cfg = empire.Small()
	}
	cfg.Seed = *seed
	if *steps > 0 {
		cfg.Steps = *steps
		cfg.Dt = 1.0 / float64(*steps)
	}
	stride := cfg.Steps / 30
	if stride < 1 {
		stride = 1
	}
	if *every > 0 {
		stride = *every
	}

	applyFaults := engineFaults(*faults)
	tweak := func(c core.Config) core.Config {
		if *trials > 0 {
			c.Trials = *trials
		}
		if *iters > 0 {
			c.Iterations = *iters
		}
		if *rounds > 0 {
			c.Rounds = *rounds
		}
		return applyFaults(c)
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if *dumpStep > 0 {
		if *dumpFile == "" {
			log.Fatal("-dumpstep requires -dumpfile")
		}
		if err := dumpWorkloadAt(cfg, *dumpStep, *dumpFile); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote step-%d color loads to %s (analyze with cmd/lbaf -workload)", *dumpStep, *dumpFile)
		return
	}

	var stream *obs.Stream
	if *serveAddr != "" {
		stream = obs.NewStream(obs.DefaultStreamCapacity)
		srv, bound, err := obs.StartServer(*serveAddr, stream, nil)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("serving observability on http://%s (attach with: lbtop -url http://%s)", bound, bound)
	}
	attachStream := func(trackers []*sim.Tracker) {
		for _, t := range trackers {
			t.Stream = stream
		}
	}

	var allTrackers []*sim.Tracker

	if want("fig2") || want("fig3") || want("fig4a") || want("fig4b") || want("fig4c") {
		trackers := sim.StandardTrackers(tweak)
		attachStream(trackers)
		allTrackers = append(allTrackers, trackers...)
		log.Printf("running %d configurations at %dx%d ranks, %d steps ...",
			len(trackers), cfg.RanksX, cfg.RanksY, cfg.Steps)
		if _, err := sim.RunTrackersWith(cfg, trackers, *workers); err != nil {
			log.Fatal(err)
		}
		if want("fig2") {
			sim.RenderFig2(os.Stdout, trackers)
			fmt.Println()
		}
		if want("fig3") {
			sim.RenderFig3(os.Stdout, trackers)
			fmt.Println()
			sim.RenderLBStats(os.Stdout, trackers)
			fmt.Println()
		}
		if want("fig4a") {
			sim.RenderFig4a(os.Stdout, trackers, stride)
			fmt.Println()
		}
		if want("fig4b") {
			sim.RenderFig4b(os.Stdout, trackers, stride)
			fmt.Println()
		}
		if want("fig4c") {
			sim.RenderFig4c(os.Stdout, trackers, stride)
			fmt.Println()
		}
		if *csvDir != "" {
			if err := sim.WriteSeriesCSV(*csvDir, trackers); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote CSV series to %s", *csvDir)
		}
		if *plot {
			sim.PlotStepTime(os.Stdout, trackers, 100, 16)
			fmt.Println()
			sim.PlotImbalance(os.Stdout, trackers, 100, 16)
			fmt.Println()
		}
	}
	if want("fig4d") {
		trackers := sim.OrderingTrackers(tweak)
		attachStream(trackers)
		allTrackers = append(allTrackers, trackers...)
		log.Printf("running %d ordering configurations ...", len(trackers))
		if _, err := sim.RunTrackersWith(cfg, trackers, *workers); err != nil {
			log.Fatal(err)
		}
		sim.RenderFig4d(os.Stdout, trackers, stride)
	}
	if !strings.Contains("fig2 fig3 fig4a fig4b fig4c fig4d all", *exp) {
		log.Fatalf("unknown experiment %q", *exp)
	}

	if *traceOut != "" {
		events, names := virtualTimeline(allTrackers)
		writeExport(*traceOut, func(w io.Writer) error {
			return obs.WriteChromeTraceNamed(w, events, names)
		})
		log.Printf("wrote %d virtual-time trace events to %s (open in ui.perfetto.dev)", len(events), *traceOut)
	}
	if *metricsOut != "" {
		writeExport(*metricsOut, func(w io.Writer) error {
			return obs.WritePrometheus(w, trackerMetrics(allTrackers))
		})
		log.Printf("wrote metrics to %s", *metricsOut)
	}
	if *serveAddr != "" {
		log.Print("run finished; still serving recorded frames (Ctrl-C to exit)")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
}

// engineFaults parses a -faults directive for the engine-driven
// simulation and returns its mapping onto a configuration. The full
// grammar applies to the gossip stage — the one transport the
// synchronous engine simulates: drop= keeps the legacy seeded-loss
// path, while dup=/delay=/delaymin=/slow=/seed= switch delivery to the
// virtual-time fault queue. The retry knobs have no engine counterpart
// and are accepted as no-ops for spec compatibility.
func engineFaults(faults string) func(core.Config) core.Config {
	if faults == "" {
		return func(c core.Config) core.Config { return c }
	}
	sp, err := comm.ParseFaultSpec(faults)
	if err != nil {
		log.Fatal(err)
	}
	if sp.RetryBase != 0 || sp.RetryCap != 0 {
		log.Print("note: retry=/retrycap= tune the distributed runtime's reliability layer; the engine's gossip queue has none, ignoring them")
	}
	return func(c core.Config) core.Config {
		c.GossipDrop = sp.Drop
		c.GossipDup = sp.Dup
		c.GossipDelayMin = sp.DelayMin
		c.GossipDelayMax = sp.DelayMax
		c.GossipSlowRanks = sp.SlowRanks
		c.GossipFaultSeed = sp.Seed
		return c
	}
}

// virtualTimeline converts each tracker's per-step series into trace
// events on the simulation's virtual clock: one track per configuration,
// one lb.iteration span per timestep (duration = modeled step time,
// value = imbalance after the step), bracketed by an lb.run span.
func virtualTimeline(trackers []*sim.Tracker) ([]obs.Event, map[int]string) {
	var events []obs.Event
	names := map[int]string{}
	for idx, t := range trackers {
		names[idx] = t.Name
		cum := time.Duration(0)
		events = append(events, obs.Event{
			Type: obs.EvLBBegin, Rank: idx, Peer: -1, Object: -1, Name: t.Name,
		})
		for i, st := range t.Series.StepTime {
			begin := obs.Event{
				Type: obs.EvIterBegin, Rank: idx, Peer: -1, Object: -1,
				Iteration: i + 1, Name: t.Name, TS: cum,
			}
			if i < len(t.Series.Imbalance) {
				begin.Value = t.Series.Imbalance[i]
			}
			cum += time.Duration(st * float64(time.Second))
			events = append(events, begin, obs.Event{
				Type: obs.EvIterEnd, Rank: idx, Peer: -1, Object: -1,
				Iteration: i + 1, TS: cum,
			})
		}
		events = append(events, obs.Event{
			Type: obs.EvLBEnd, Rank: idx, Peer: -1, Object: -1, Name: t.Name, TS: cum,
			Value: float64(cum) / float64(time.Second),
		})
	}
	return events, names
}

// trackerMetrics summarizes each configuration's accounting as a metrics
// registry labelled by configuration name.
func trackerMetrics(trackers []*sim.Tracker) *obs.Metrics {
	m := obs.NewMetrics()
	m.SetHelp("empire_lb_invocations_total", "Load balancer invocations, by configuration.")
	m.SetHelp("empire_lb_messages_total", "Balancer algorithm messages, by configuration.")
	m.SetHelp("empire_lb_moved_tasks_total", "Tasks migrated by the balancer, by configuration.")
	m.SetHelp("empire_lb_moved_load", "Load units migrated by the balancer, by configuration.")
	m.SetHelp("empire_total_step_seconds", "Total modeled step time in virtual seconds.")
	m.SetHelp("empire_imbalance_final", "Imbalance I after the final timestep.")
	for _, t := range trackers {
		label := metricLabel(t.Name)
		m.Counter(obs.LabeledName("empire_lb_invocations_total", "config", label)).Add(int64(t.LBStats.Invocations))
		m.Counter(obs.LabeledName("empire_lb_messages_total", "config", label)).Add(int64(t.LBStats.Messages))
		m.Counter(obs.LabeledName("empire_lb_moved_tasks_total", "config", label)).Add(int64(t.LBStats.MovedTasks))
		m.Gauge(obs.LabeledName("empire_lb_moved_load", "config", label)).Set(t.LBStats.MovedLoad)
		total := 0.0
		for _, st := range t.Series.StepTime {
			total += st
		}
		m.Gauge(obs.LabeledName("empire_total_step_seconds", "config", label)).Set(total)
		if n := len(t.Series.Imbalance); n > 0 {
			m.Gauge(obs.LabeledName("empire_imbalance_final", "config", label)).Set(t.Series.Imbalance[n-1])
		}
	}
	return m
}

// metricLabel reduces a configuration name to a label-safe slug.
func metricLabel(name string) string {
	name = strings.ToLower(name)
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case b.Len() > 0 && !strings.HasSuffix(b.String(), "_"):
			b.WriteByte('_')
		}
	}
	return strings.Trim(b.String(), "_")
}

// writeExport creates path and streams one exporter into it.
func writeExport(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

// dumpWorkloadAt advances the physics alone to the given step and
// writes the per-color loads, homed under the static SPMD mapping, as a
// JSON workload trace that cmd/lbaf can analyze.
func dumpWorkloadAt(cfg empire.Config, step int, path string) error {
	app, err := empire.NewApp(cfg)
	if err != nil {
		return err
	}
	var counts []int
	for s := 0; s < step; s++ {
		counts = app.Step()
	}
	loads := app.ColorLoads(counts)
	a := core.NewAssignment(cfg.NumRanks())
	for c, l := range loads {
		a.Add(l, app.Coloring.HomeRank(mesh.ColorID(c)))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return lbaf.SaveWorkload(f, a)
}
