// Command empire runs the EMPIRE-like PIC benchmark across the paper's
// five configurations and emits the data behind Figs. 2, 3 and 4a–d.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"temperedlb/internal/core"
	"temperedlb/internal/empire"
	"temperedlb/internal/lbaf"
	"temperedlb/internal/mesh"
	"temperedlb/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("empire: ")
	var (
		exp      = flag.String("exp", "all", "experiment: fig2 | fig3 | fig4a | fig4b | fig4c | fig4d | all")
		scale    = flag.String("scale", "full", "full (paper scale, 400 ranks) | small (test scale)")
		steps    = flag.Int("steps", 0, "override timestep count (0 = config default)")
		trials   = flag.Int("trials", 0, "override TemperedLB trials (0 = paper's 10)")
		iters    = flag.Int("iters", 0, "override TemperedLB iterations (0 = paper's 8)")
		rounds   = flag.Int("k", 3, "gossip rounds for the distributed balancers (~log_f P)")
		every    = flag.Int("every", 0, "series sampling stride (0 = auto)")
		seed     = flag.Int64("seed", 1, "physics seed")
		csvDir   = flag.String("csv", "", "also dump per-step series as CSV files into this directory")
		plot     = flag.Bool("plot", false, "render ASCII charts of the fig4a/fig4c series")
		dumpStep = flag.Int("dumpstep", 0, "run the physics to this step and dump the color loads as a JSON workload trace (requires -dumpfile)")
		dumpFile = flag.String("dumpfile", "", "trace output path for -dumpstep")
	)
	flag.Parse()

	cfg := empire.Default()
	if *scale == "small" {
		cfg = empire.Small()
	}
	cfg.Seed = *seed
	if *steps > 0 {
		cfg.Steps = *steps
		cfg.Dt = 1.0 / float64(*steps)
	}
	stride := cfg.Steps / 30
	if stride < 1 {
		stride = 1
	}
	if *every > 0 {
		stride = *every
	}

	tweak := func(c core.Config) core.Config {
		if *trials > 0 {
			c.Trials = *trials
		}
		if *iters > 0 {
			c.Iterations = *iters
		}
		if *rounds > 0 {
			c.Rounds = *rounds
		}
		return c
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if *dumpStep > 0 {
		if *dumpFile == "" {
			log.Fatal("-dumpstep requires -dumpfile")
		}
		if err := dumpWorkloadAt(cfg, *dumpStep, *dumpFile); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote step-%d color loads to %s (analyze with cmd/lbaf -workload)", *dumpStep, *dumpFile)
		return
	}

	if want("fig2") || want("fig3") || want("fig4a") || want("fig4b") || want("fig4c") {
		trackers := sim.StandardTrackers(tweak)
		log.Printf("running %d configurations at %dx%d ranks, %d steps ...",
			len(trackers), cfg.RanksX, cfg.RanksY, cfg.Steps)
		if _, err := sim.RunTrackers(cfg, trackers); err != nil {
			log.Fatal(err)
		}
		if want("fig2") {
			sim.RenderFig2(os.Stdout, trackers)
			fmt.Println()
		}
		if want("fig3") {
			sim.RenderFig3(os.Stdout, trackers)
			fmt.Println()
			sim.RenderLBStats(os.Stdout, trackers)
			fmt.Println()
		}
		if want("fig4a") {
			sim.RenderFig4a(os.Stdout, trackers, stride)
			fmt.Println()
		}
		if want("fig4b") {
			sim.RenderFig4b(os.Stdout, trackers, stride)
			fmt.Println()
		}
		if want("fig4c") {
			sim.RenderFig4c(os.Stdout, trackers, stride)
			fmt.Println()
		}
		if *csvDir != "" {
			if err := sim.WriteSeriesCSV(*csvDir, trackers); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote CSV series to %s", *csvDir)
		}
		if *plot {
			sim.PlotStepTime(os.Stdout, trackers, 100, 16)
			fmt.Println()
			sim.PlotImbalance(os.Stdout, trackers, 100, 16)
			fmt.Println()
		}
	}
	if want("fig4d") {
		trackers := sim.OrderingTrackers(tweak)
		log.Printf("running %d ordering configurations ...", len(trackers))
		if _, err := sim.RunTrackers(cfg, trackers); err != nil {
			log.Fatal(err)
		}
		sim.RenderFig4d(os.Stdout, trackers, stride)
	}
	if !strings.Contains("fig2 fig3 fig4a fig4b fig4c fig4d all", *exp) {
		log.Fatalf("unknown experiment %q", *exp)
	}
}

// dumpWorkloadAt advances the physics alone to the given step and
// writes the per-color loads, homed under the static SPMD mapping, as a
// JSON workload trace that cmd/lbaf can analyze.
func dumpWorkloadAt(cfg empire.Config, step int, path string) error {
	app, err := empire.NewApp(cfg)
	if err != nil {
		return err
	}
	var counts []int
	for s := 0; s < step; s++ {
		counts = app.Step()
	}
	loads := app.ColorLoads(counts)
	a := core.NewAssignment(cfg.NumRanks())
	for c, l := range loads {
		a.Add(l, app.Coloring.HomeRank(mesh.ColorID(c)))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return lbaf.SaveWorkload(f, a)
}
