// Command lbvet runs the module's project-specific static analyzers —
// the machine-checked form of the determinism and concurrency contracts
// of DESIGN.md §9 — over the given package patterns.
//
// Usage:
//
//	lbvet [-only=analyzer,...] [-json] [-list] [-fix] [patterns...]
//
// Patterns are ./...-style directory patterns relative to the module
// root (default ./...). Findings print as `file:line: message
// [analyzer]`; with -json they print as a JSON array (each entry noting
// whether a suggested fix exists). The exit status is 1 when findings
// exist, 2 on usage or load errors.
//
// -fix applies every machine-applicable suggested fix in place (stale
// directive deletion, time.Now -> clock.Now where internal/clock is
// already imported), then reports only the findings that remain
// unfixed; the exit status reflects those. Applying fixes is
// idempotent: a second -fix run changes nothing.
//
// Suppress a finding with a directive on the offending line or the line
// above it:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"temperedlb/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("lbvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list analyzers and exit")
	fix := fs.Bool("fix", false, "apply machine-applicable suggested fixes in place")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	all := analysis.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	selected, err := analysis.Select(all, *only)
	if err != nil {
		fmt.Fprintln(stderr, "lbvet:", err)
		return 2
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "lbvet:", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(stderr, "lbvet:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err = filterPackages(pkgs, loader.ModuleRoot(), patterns)
	if err != nil {
		fmt.Fprintln(stderr, "lbvet:", err)
		return 2
	}

	runner := &analysis.Runner{Analyzers: selected}
	diags := runner.Run(pkgs)

	if *fix {
		applied, files, err := analysis.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintln(stderr, "lbvet:", err)
			return 2
		}
		if applied > 0 {
			fmt.Fprintf(stderr, "lbvet: applied %d fixes to %d files\n", applied, len(files))
		}
		// Only findings without a fix remain outstanding.
		remaining := diags[:0]
		for _, d := range diags {
			if len(d.Fixes) == 0 {
				remaining = append(remaining, d)
			}
		}
		diags = remaining
	}

	// Report positions relative to the working directory for readable,
	// clickable output.
	wd, _ := os.Getwd()
	for i := range diags {
		if wd == "" {
			break
		}
		if rel, err := filepath.Rel(wd, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}

	if *asJSON {
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
			Fixable  bool   `json:"fixable,omitempty"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{
				File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message, Fixable: len(d.Fixes) > 0,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "lbvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// filterPackages keeps the packages matching the ./...-style patterns,
// interpreted relative to the current working directory.
func filterPackages(pkgs []*analysis.Package, modRoot string, patterns []string) ([]*analysis.Package, error) {
	wd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	var out []*analysis.Package
	for _, p := range pkgs {
		for _, pat := range patterns {
			ok, err := matchPattern(p.Dir, wd, pat)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, p)
				break
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages match %s", strings.Join(patterns, " "))
	}
	return out, nil
}

func matchPattern(dir, wd, pat string) (bool, error) {
	recursive := false
	if pat == "..." {
		pat, recursive = ".", true
	} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		pat, recursive = rest, true
	}
	base, err := filepath.Abs(filepath.Join(wd, filepath.FromSlash(pat)))
	if err != nil {
		return false, err
	}
	if dir == base {
		return true, nil
	}
	return recursive && strings.HasPrefix(dir, base+string(filepath.Separator)), nil
}
