// Command lbaf runs the Load Balancing Analysis Framework experiments:
// the §V-B and §V-D iteration tables and their comparison, plus custom
// sweeps over the algorithm's knobs.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"temperedlb/internal/comm"
	"temperedlb/internal/core"
	"temperedlb/internal/lbaf"
	"temperedlb/internal/obs"
	"temperedlb/internal/workload"
)

// engineFaults parses a -faults directive for the engine-driven
// experiments and returns its mapping onto a configuration. The full
// grammar applies to the gossip stage — the one transport the
// synchronous engine simulates: drop= keeps the legacy seeded-loss
// path, while dup=/delay=/delaymin=/slow=/seed= switch delivery to the
// virtual-time fault queue. The retry knobs have no engine counterpart
// (the queue never loses a message except by explicit drop) and are
// accepted as no-ops for spec compatibility with the distributed tools.
func engineFaults(faults string) func(core.Config) core.Config {
	if faults == "" {
		return func(c core.Config) core.Config { return c }
	}
	sp, err := comm.ParseFaultSpec(faults)
	if err != nil {
		log.Fatal(err)
	}
	if sp.RetryBase != 0 || sp.RetryCap != 0 {
		log.Print("note: retry=/retrycap= tune the distributed runtime's reliability layer; the engine's gossip queue has none, ignoring them")
	}
	return func(c core.Config) core.Config {
		c.GossipDrop = sp.Drop
		c.GossipDup = sp.Dup
		c.GossipDelayMin = sp.DelayMin
		c.GossipDelayMax = sp.DelayMax
		c.GossipSlowRanks = sp.SlowRanks
		c.GossipFaultSeed = sp.Seed
		return c
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbaf: ")
	var (
		exp        = flag.String("exp", "compare", "experiment: vb | vd | compare")
		inFile     = flag.String("workload", "", "load the workload from a JSON trace instead of generating it")
		outFile    = flag.String("dump", "", "write the generated workload as a JSON trace and exit")
		seed       = flag.Int64("seed", 1, "workload and algorithm seed")
		iters      = flag.Int("iters", 10, "refinement iterations")
		rounds     = flag.Int("k", 10, "gossip rounds")
		fanout     = flag.Int("f", 6, "gossip fanout")
		thresh     = flag.Float64("h", 1.0, "overload threshold")
		ranks      = flag.Int("ranks", 1<<12, "total ranks")
		loaded     = flag.Int("loaded", 1<<4, "initially loaded ranks")
		tasks      = flag.Int("tasks", 10000, "task count")
		traceOut   = flag.String("trace", "", "write the engine's lb.run/lb.iteration spans as Chrome trace_event JSON to this file")
		metricsOut = flag.String("metrics", "", "write the experiment's table columns as Prometheus text metrics to this file")
		workers    = flag.Int("workers", 1, "concurrent engine runs for compare/sweep experiments (0 = GOMAXPROCS); output is identical at any worker count")
		faults     = flag.String("faults", "", "inject gossip transport faults, e.g. \"seed=7,drop=0.05,dup=0.02,delay=5ms,slow=3:2ms\" (retry knobs are distributed-only no-ops)")
	)
	flag.Parse()

	spec := workload.VBCase(*seed)
	spec.NumRanks = *ranks
	spec.LoadedRanks = *loaded
	spec.NumTasks = *tasks

	if *outFile != "" {
		a, err := workload.Generate(spec)
		check(err)
		f, err := os.Create(*outFile)
		check(err)
		check(lbaf.SaveWorkload(f, a))
		check(f.Close())
		log.Printf("wrote %d tasks over %d ranks to %s", a.NumTasks(), a.NumRanks(), *outFile)
		return
	}
	var traced *core.Assignment
	if *inFile != "" {
		f, err := os.Open(*inFile)
		check(err)
		traced, err = lbaf.LoadWorkload(f)
		check(err)
		check(f.Close())
	}
	table := func(title string, cfg core.Config) (lbaf.Table, error) {
		if traced != nil {
			return lbaf.RunIterationTableOn(title, traced, cfg)
		}
		return lbaf.RunIterationTable(title, spec, cfg)
	}

	var rec *obs.Recorder
	if *traceOut != "" {
		rec = obs.NewRecorder()
	}
	var tables []lbaf.Table

	base := core.Grapevine()
	base.Iterations = *iters
	base.Rounds = *rounds
	base.Fanout = *fanout
	base.Threshold = *thresh
	base.Seed = *seed
	base = engineFaults(*faults)(base)
	if rec != nil {
		base.Tracer = rec
	}
	// The paper's LBAF accounting implies rejected tasks are retried
	// until a full traversal accepts nothing; enable that here so the
	// evaluation counts are comparable to the paper's tables.
	base.Passes = 0

	switch *exp {
	case "vb":
		t, err := table("§V-B: original criterion", base)
		check(err)
		t.Render(os.Stdout)
		tables = append(tables, t)
	case "vd":
		cfg := base
		cfg.Criterion = core.CriterionRelaxed
		cfg.CMF = core.CMFModified
		cfg.RecomputeCMF = true
		t, err := table("§V-D: relaxed criterion", cfg)
		check(err)
		t.Render(os.Stdout)
		tables = append(tables, t)
	case "compare":
		a := traced
		if a == nil {
			var err error
			a, err = workload.Generate(spec)
			check(err)
		}
		c, err := lbaf.RunComparisonOnParallel(a, base, *workers)
		check(err)
		c.Original.Render(os.Stdout)
		fmt.Println()
		c.Relaxed.Render(os.Stdout)
		fmt.Println()
		c.Render(os.Stdout)
		tables = append(tables, c.Original, c.Relaxed)
	case "sweep-gossip":
		cfg := base
		cfg.Criterion = core.CriterionRelaxed
		cfg.CMF = core.CMFModified
		cfg.RecomputeCMF = true
		cfg.Trials = 1
		sw, err := lbaf.RunSweepParallel("gossip fanout/rounds sweep (relaxed criterion)", spec,
			lbaf.GossipSweepConfigs(cfg, []int{2, 4, 6, 8}, []int{2, 4, 6, 10}), *workers)
		check(err)
		sw.Render(os.Stdout)
	case "sweep-refine":
		cfg := base
		cfg.Criterion = core.CriterionRelaxed
		cfg.CMF = core.CMFModified
		cfg.RecomputeCMF = true
		sw, err := lbaf.RunSweepParallel("refinement trials/iterations sweep", spec,
			lbaf.RefinementSweepConfigs(cfg, []int{1, 4, 10}, []int{1, 4, 8}), *workers)
		check(err)
		sw.Render(os.Stdout)
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}

	if rec != nil {
		writeExport(*traceOut, func(w io.Writer) error {
			return obs.WriteChromeTrace(w, rec.Events())
		})
		log.Printf("wrote %d trace events to %s (open in ui.perfetto.dev)", len(rec.Events()), *traceOut)
	}
	if *metricsOut != "" {
		if len(tables) == 0 {
			log.Printf("note: experiment %q produces no iteration tables; metrics file will be empty", *exp)
		}
		writeExport(*metricsOut, func(w io.Writer) error {
			return obs.WritePrometheus(w, tableMetrics(tables))
		})
		log.Printf("wrote metrics to %s", *metricsOut)
	}
}

// tableMetrics republishes the paper-table columns of each iteration
// table as a metrics registry (see DESIGN.md for the column-to-metric
// mapping), labelled by the table title.
func tableMetrics(tables []lbaf.Table) *obs.Metrics {
	m := obs.NewMetrics()
	m.SetHelp("lb_transfers_total", "Accepted transfer decisions, by experiment table.")
	m.SetHelp("lb_transfers_rejected_total", "Rejected transfer decisions, by experiment table.")
	m.SetHelp("lb_gossip_messages_total", "Gossip messages delivered, by experiment table.")
	m.SetHelp("lb_gossip_entries_total", "Gossip payload entries delivered, by experiment table.")
	m.SetHelp("lb_imbalance_initial", "Imbalance I before refinement.")
	m.SetHelp("lb_imbalance_final", "Imbalance I after the last iteration.")
	for _, t := range tables {
		label := metricLabel(t.Title)
		transfers, rejected := 0, 0
		for _, row := range t.Rows {
			transfers += row.Transfers
			rejected += row.Rejected
		}
		m.Counter(obs.LabeledName("lb_transfers_total", "table", label)).Add(int64(transfers))
		m.Counter(obs.LabeledName("lb_transfers_rejected_total", "table", label)).Add(int64(rejected))
		m.Counter(obs.LabeledName("lb_gossip_messages_total", "table", label)).Add(int64(t.GossipMessages))
		m.Counter(obs.LabeledName("lb_gossip_entries_total", "table", label)).Add(int64(t.GossipEntries))
		m.Gauge(obs.LabeledName("lb_imbalance_initial", "table", label)).Set(t.InitialImbalance)
		if n := len(t.Rows); n > 0 {
			m.Gauge(obs.LabeledName("lb_imbalance_final", "table", label)).Set(t.Rows[n-1].Imbalance)
		}
	}
	return m
}

// metricLabel reduces a table title to a label-safe slug.
func metricLabel(title string) string {
	title = strings.ToLower(title)
	var b strings.Builder
	for _, r := range title {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case b.Len() > 0 && !strings.HasSuffix(b.String(), "_"):
			b.WriteByte('_')
		}
	}
	return strings.Trim(b.String(), "_")
}

// writeExport creates path and streams one exporter into it.
func writeExport(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
