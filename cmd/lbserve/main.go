// Command lbserve runs the online balancer service: a deterministic
// scenario stream (ramp, diurnal, burst, churn) drives phases of work,
// a Holt level+trend load model forecasts the next phase, and a
// pluggable trigger decides when the tempered protocol is worth
// invoking. The trigger-decision log it prints is rank-identical and
// wall-clock free: the same flags produce byte-identical output on the
// in-memory transport and on Unix/TCP socket clusters at any node
// count — `make serve-smoke` holds the repo to that.
//
// Modes:
//
//	lbserve [flags]                  run the service, print the trigger log
//	lbserve -record FILE [flags]     write the scenario's event trace as JSON
//	lbserve -tune FAMILIES [flags]   grid-search trigger parameters offline
//	                                 (against -trace FILE, or the scenario)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"sync"

	"temperedlb"
	"temperedlb/internal/comm/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbserve: ")
	var (
		// Scenario.
		scenario = flag.String("scenario", "burst", "workload stream: ramp | diurnal | burst | churn")
		ranks    = flag.Int("ranks", 8, "number of ranks")
		phases   = flag.Int("phases", 40, "number of service phases")
		items    = flag.Int("items", 64, "number of logical tasks over the run")
		seed     = flag.Int64("seed", 7, "scenario and protocol seed")
		hot      = flag.Int("hot", 0, "ranks homing the skewed share of the items (0 = ranks/4)")

		// Trigger and predictor.
		trigger = flag.String("trigger", "forecast", "always | every:K | threshold:H | forecast[:headroom=X]")
		alpha   = flag.Float64("alpha", 0.5, "load model level smoothing in (0,1]")
		beta    = flag.Float64("beta", 0.3, "load model trend smoothing in [0,1]")
		maxAge  = flag.Int("maxage", 0, "phases an absent object survives in the model (0 = default)")
		lbCost  = flag.Float64("lbcost", 20, "cost of one balancer invocation, in load units")

		// Runtime.
		transport = flag.String("transport", "memory", "memory | unix | tcp (unix/tcp run an in-process socket cluster)")
		nodes     = flag.Int("nodes", 2, "socket-cluster node count for -transport=unix|tcp")
		fanout    = flag.Int("fanout", 4, "arity of the collective reduction tree")

		// Modes and output.
		recordOut  = flag.String("record", "", "write the scenario's event trace as JSON to this file and exit")
		tuneFams   = flag.String("tune", "", "tune trigger parameters offline: comma-separated families (every,threshold,forecast) or \"all\"")
		tracePath  = flag.String("trace", "", "replay trace file for -tune (default: record from the scenario flags)")
		metricsOut = flag.String("metrics", "", "write runtime metrics in Prometheus text format to this file")
		quiet      = flag.Bool("quiet", false, "suppress the per-phase trigger log, print only the summary")
	)
	flag.Parse()

	kind, err := temperedlb.ParseScenarioKind(*scenario)
	if err != nil {
		log.Fatal(err)
	}
	spec := temperedlb.ScenarioSpec{
		Kind: kind, Ranks: *ranks, Phases: *phases, Items: *items, Seed: *seed, Hot: *hot,
	}

	if *recordOut != "" {
		sc, err := temperedlb.NewScenario(spec)
		if err != nil {
			log.Fatal(err)
		}
		writeJSON(*recordOut, temperedlb.RecordServiceTrace(sc))
		log.Printf("wrote %d-phase trace to %s", *phases, *recordOut)
		return
	}

	sim := temperedlb.SimConfig{Alpha: *alpha, Beta: *beta, MaxAge: *maxAge, LBCost: *lbCost}
	if *tuneFams != "" {
		tune(*tuneFams, *tracePath, spec, sim)
		return
	}

	ts, err := temperedlb.ParseTrigger(*trigger)
	if err != nil {
		log.Fatal(err)
	}
	cfg := temperedlb.ServiceConfig{
		Scenario: spec, Trigger: ts,
		Alpha: *alpha, Beta: *beta, MaxAge: *maxAge, LBCost: *lbCost,
	}

	res, metrics, err := runService(cfg, *transport, *nodes, *fanout, *metricsOut != "")
	if err != nil {
		log.Fatal(err)
	}
	if *quiet {
		short := res
		short.Rows = nil
		if err := temperedlb.WriteServiceLog(os.Stdout, cfg, short); err != nil {
			log.Fatal(err)
		}
	} else if err := temperedlb.WriteServiceLog(os.Stdout, cfg, res); err != nil {
		log.Fatal(err)
	}
	if *metricsOut != "" {
		writeExport(*metricsOut, func(w io.Writer) error {
			return temperedlb.WritePrometheus(w, metrics)
		})
		log.Printf("wrote metrics to %s", *metricsOut)
	}
}

// runService executes the service on the chosen transport and returns
// rank 0's result (identical on every rank apart from the local
// migration count, which is summed into it for reporting).
func runService(cfg temperedlb.ServiceConfig, transport string, nodes, fanout int, wantMetrics bool) (temperedlb.ServiceResult, *temperedlb.Metrics, error) {
	n := cfg.Scenario.Ranks
	results := make([]temperedlb.ServiceResult, n)
	errs := make([]error, n)
	body := func(h *temperedlb.LBHandlers) func(rc *temperedlb.RankContext) {
		return func(rc *temperedlb.RankContext) {
			res, err := temperedlb.RunService(rc, h, cfg)
			results[rc.Rank()], errs[rc.Rank()] = res, err
		}
	}
	opts := []temperedlb.RuntimeOption{temperedlb.WithFanout(fanout)}
	if wantMetrics {
		opts = append(opts, temperedlb.WithMetrics())
	}

	var metrics *temperedlb.Metrics
	switch transport {
	case "memory":
		rt := temperedlb.NewRuntime(n, opts...)
		rt.Run(body(temperedlb.RegisterLBHandlers(rt, 1)))
		metrics = rt.Metrics()
	case "unix", "tcp":
		cluster, err := wire.NewCluster(transport, n, nodes, uint64(cfg.Scenario.Seed)+0x5e12e)
		if err != nil {
			return temperedlb.ServiceResult{}, nil, err
		}
		defer cluster.Close()
		var wg sync.WaitGroup
		for i, tr := range cluster.Transports {
			rt := temperedlb.NewRuntime(n, append(opts, temperedlb.WithTransport(tr))...)
			if i == 0 {
				metrics = rt.Metrics()
			}
			b := body(temperedlb.RegisterLBHandlers(rt, 1))
			wg.Add(1)
			go func(rt *temperedlb.Runtime) {
				defer wg.Done()
				rt.Run(b)
			}(rt)
		}
		wg.Wait()
		for _, tr := range cluster.Transports {
			if err := tr.Err(); err != nil {
				return temperedlb.ServiceResult{}, nil, fmt.Errorf("%s transport failed: %w", transport, err)
			}
		}
	default:
		return temperedlb.ServiceResult{}, nil, fmt.Errorf("unknown transport %q (want memory, unix or tcp)", transport)
	}

	for r, err := range errs {
		if err != nil {
			return temperedlb.ServiceResult{}, nil, fmt.Errorf("rank %d: %w", r, err)
		}
	}
	res := results[0]
	res.LocalMigrations = 0
	for _, r := range results {
		res.LocalMigrations += r.LocalMigrations
	}
	return res, metrics, nil
}

// tune grid-searches trigger parameters against a trace and prints the
// sweep, cheapest first configuration last so it is what the eye lands
// on.
func tune(families, tracePath string, spec temperedlb.ScenarioSpec, sim temperedlb.SimConfig) {
	var tr temperedlb.ServiceTrace
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := json.NewDecoder(f).Decode(&tr); err != nil {
			log.Fatalf("decode %s: %v", tracePath, err)
		}
	} else {
		sc, err := temperedlb.NewScenario(spec)
		if err != nil {
			log.Fatal(err)
		}
		tr = temperedlb.RecordServiceTrace(sc)
	}
	var fams []string
	if families != "all" {
		fams = strings.Split(families, ",")
	}
	best, all, err := temperedlb.TuneTrigger(tr, fams, sim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# tune: %d candidates over %d phases, lbcost %g\n", len(all), len(tr.Phases), sim.LBCost)
	for _, c := range all {
		fmt.Printf("%-24s fires %3d  waste %10.4f  lb_paid %10.4f  total %10.4f\n",
			c.Spec, c.Result.Fires, c.Result.TotalWaste, c.Result.LBPaid, c.Result.TotalCost)
	}
	fmt.Printf("# best: %s  total %.4f (fires %d)\n", best.Spec, best.Result.TotalCost, best.Result.Fires)
}

func writeJSON(path string, v any) {
	writeExport(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	})
}

// writeExport creates path and streams one exporter into it.
func writeExport(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}
