// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations over the design choices called out in
// DESIGN.md. Each benchmark runs a scaled configuration sized to finish
// in well under a second per iteration; the cmd/lbaf and cmd/empire
// binaries run the same experiments at full paper scale (2^12 ranks /
// 400 ranks respectively) and are what EXPERIMENTS.md records.
package temperedlb_test

import (
	"fmt"
	"io"
	"testing"

	"temperedlb"
	"temperedlb/internal/core"
	"temperedlb/internal/empire"
	"temperedlb/internal/lb/tempered"
	"temperedlb/internal/lbaf"
	"temperedlb/internal/sim"
	"temperedlb/internal/workload"
)

// benchVBSpec is the §V-B case scaled 8x down (512 of 4096 ranks kept,
// proportional tasks) so one iteration table fits in a benchmark op.
func benchVBSpec() workload.Spec {
	s := workload.VBCase(1)
	s.NumRanks = 512
	s.LoadedRanks = 8
	s.NumTasks = 1500
	return s
}

func benchLBAFConfig() core.Config {
	cfg := core.Grapevine()
	cfg.Iterations = 6
	cfg.Rounds = 6
	cfg.Fanout = 4
	cfg.Passes = 0 // LBAF-style retries, as in the paper's accounting
	return cfg
}

// BenchmarkTableVB regenerates the §V-B iteration table (original
// criterion: transfers, rejections, rejection rate, imbalance).
func BenchmarkTableVB(b *testing.B) {
	spec, cfg := benchVBSpec(), benchLBAFConfig()
	for i := 0; i < b.N; i++ {
		t, err := lbaf.RunIterationTable("§V-B", spec, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := t.Rows[len(t.Rows)-1]
		b.ReportMetric(last.Imbalance, "final-I")
		b.ReportMetric(last.RejectionRate, "final-rej-%")
	}
}

// BenchmarkTableVD regenerates the §V-D iteration table (relaxed
// criterion on the identical case).
func BenchmarkTableVD(b *testing.B) {
	spec := benchVBSpec()
	cfg := benchLBAFConfig()
	cfg.Criterion = core.CriterionRelaxed
	cfg.CMF = core.CMFModified
	cfg.RecomputeCMF = true
	for i := 0; i < b.N; i++ {
		t, err := lbaf.RunIterationTable("§V-D", spec, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Rows[len(t.Rows)-1].Imbalance, "final-I")
	}
}

// BenchmarkTableCompare regenerates the §V-D side-by-side comparison of
// criterion 35 vs criterion 37.
func BenchmarkTableCompare(b *testing.B) {
	spec, cfg := benchVBSpec(), benchLBAFConfig()
	for i := 0; i < b.N; i++ {
		c, err := lbaf.RunComparison(spec, cfg)
		if err != nil {
			b.Fatal(err)
		}
		o := c.Original.Rows[len(c.Original.Rows)-1].Imbalance
		r := c.Relaxed.Rows[len(c.Relaxed.Rows)-1].Imbalance
		b.ReportMetric(o/r, "I-ratio-orig/relaxed")
	}
}

// benchEmpire runs the EMPIRE-like experiment at the Medium scale (64
// ranks, 300 steps) with a reduced refinement budget.
func benchEmpire(b *testing.B, trackers []*sim.Tracker) {
	b.Helper()
	if _, err := sim.RunTrackers(empire.Medium(), trackers); err != nil {
		b.Fatal(err)
	}
}

func quickTweak(c core.Config) core.Config {
	c.Trials, c.Iterations, c.Rounds = 4, 4, 3
	return c
}

// BenchmarkFig2 regenerates the overall performance comparison: the
// five configurations' particle/non-particle totals and speedups.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		trackers := sim.StandardTrackers(quickTweak)
		benchEmpire(b, trackers)
		spmd, tmp := trackers[0], trackers[5]
		b.ReportMetric(spmd.Breakdown.TP/tmp.Breakdown.TP, "particle-speedup")
		b.ReportMetric(spmd.Breakdown.TTotal/tmp.Breakdown.TTotal, "overall-speedup")
	}
}

// BenchmarkFig3 regenerates the t_n/t_p/t_lb/t_total breakdown table.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		trackers := sim.StandardTrackers(quickTweak)
		benchEmpire(b, trackers)
		sim.RenderFig3(io.Discard, trackers)
		b.ReportMetric(trackers[5].Breakdown.TLB, "tempered-t_lb")
	}
}

// BenchmarkFig4a regenerates the per-timestep full-step time series.
func BenchmarkFig4a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		trackers := sim.StandardTrackers(quickTweak)
		benchEmpire(b, trackers)
		sim.RenderFig4a(io.Discard, trackers, 10)
	}
}

// BenchmarkFig4b regenerates the per-rank task load extrema and lower
// bound series.
func BenchmarkFig4b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		trackers := sim.StandardTrackers(quickTweak)
		benchEmpire(b, trackers)
		sim.RenderFig4b(io.Discard, trackers, 10)
		tmp := trackers[5]
		last := len(tmp.Series.MaxLoad) - 1
		b.ReportMetric(tmp.Series.MaxLoad[last]/tmp.Series.LowerBound[last], "max/lower-bound")
	}
}

// BenchmarkFig4c regenerates the imbalance-over-time series.
func BenchmarkFig4c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		trackers := sim.StandardTrackers(quickTweak)
		benchEmpire(b, trackers)
		sim.RenderFig4c(io.Discard, trackers, 10)
		noLB, tmp := trackers[1], trackers[5]
		mid := len(noLB.Series.Imbalance) / 2
		b.ReportMetric(noLB.Series.Imbalance[mid], "noLB-mid-I")
		b.ReportMetric(tmp.Series.Imbalance[mid], "tempered-mid-I")
	}
}

// BenchmarkFig4d regenerates the traversal-ordering comparison.
func BenchmarkFig4d(b *testing.B) {
	for i := 0; i < b.N; i++ {
		trackers := sim.OrderingTrackers(quickTweak)
		benchEmpire(b, trackers)
		sim.RenderFig4d(io.Discard, trackers, 10)
		b.ReportMetric(trackers[1].Breakdown.TP, "fewest-migrations-t_p")
	}
}

// BenchmarkAblationRecompute isolates proposed change #3: rebuilding the
// CMF inside the transfer loop versus building it once.
func BenchmarkAblationRecompute(b *testing.B) {
	spec := benchVBSpec()
	for _, recompute := range []bool{false, true} {
		b.Run(fmt.Sprintf("recompute=%v", recompute), func(b *testing.B) {
			cfg := benchLBAFConfig()
			cfg.Criterion = core.CriterionRelaxed
			cfg.CMF = core.CMFModified
			cfg.RecomputeCMF = recompute
			for i := 0; i < b.N; i++ {
				t, err := lbaf.RunIterationTable("ablation", spec, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(t.Rows[len(t.Rows)-1].Imbalance, "final-I")
			}
		})
	}
}

// BenchmarkAblationTrials sweeps the refinement budget (changes #1/#2):
// trials x iterations from the single-shot original to the paper's 10x8.
func BenchmarkAblationTrials(b *testing.B) {
	a, err := workload.Generate(benchVBSpec())
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct{ trials, iters int }{{1, 1}, {1, 4}, {4, 4}, {10, 8}} {
		b.Run(fmt.Sprintf("trials=%d/iters=%d", tc.trials, tc.iters), func(b *testing.B) {
			cfg := core.Tempered()
			cfg.Trials, cfg.Iterations = tc.trials, tc.iters
			cfg.Rounds, cfg.Fanout = 6, 4
			eng, err := core.NewEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				res, err := eng.Run(a)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.FinalImbalance, "final-I")
			}
		})
	}
}

// BenchmarkAblationGossip sweeps the gossip fanout and round count
// (footnote 2's information/volume trade-off).
func BenchmarkAblationGossip(b *testing.B) {
	a, err := workload.Generate(benchVBSpec())
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct{ f, k int }{{2, 2}, {2, 6}, {4, 4}, {6, 10}} {
		b.Run(fmt.Sprintf("f=%d/k=%d", tc.f, tc.k), func(b *testing.B) {
			cfg := core.Tempered()
			cfg.Trials, cfg.Iterations = 2, 4
			cfg.Fanout, cfg.Rounds = tc.f, tc.k
			eng, err := core.NewEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				res, err := eng.Run(a)
				if err != nil {
					b.Fatal(err)
				}
				msgs := 0
				for _, it := range res.History {
					msgs += it.GossipMessages
				}
				b.ReportMetric(float64(msgs), "gossip-msgs")
				b.ReportMetric(res.FinalImbalance, "final-I")
			}
		})
	}
}

// BenchmarkAblationNacks quantifies §V-A's design decision to drop
// Menon's negative acknowledgements in favor of iterative refinement.
func BenchmarkAblationNacks(b *testing.B) {
	a, err := workload.Generate(benchVBSpec())
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		nacks  bool
		trials int
		iters  int
	}{
		{"nacks/single-shot", true, 1, 1},
		{"refinement/no-nacks", false, 2, 4},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := core.Tempered()
			cfg.NegativeAcks = tc.nacks
			cfg.Trials, cfg.Iterations = tc.trials, tc.iters
			cfg.Rounds, cfg.Fanout = 6, 4
			eng, err := core.NewEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				res, err := eng.Run(a)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.FinalImbalance, "final-I")
			}
		})
	}
}

// BenchmarkAblationLimitedInfo caps the gossip payload size (footnote
// 2's future work) and reports the quality/volume trade-off.
func BenchmarkAblationLimitedInfo(b *testing.B) {
	a, err := workload.Generate(benchVBSpec())
	if err != nil {
		b.Fatal(err)
	}
	for _, cap := range []int{0, 32, 8, 2} {
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			cfg := core.Tempered()
			cfg.Trials, cfg.Iterations = 2, 4
			cfg.Rounds, cfg.Fanout = 6, 4
			cfg.MaxGossipEntries = cap
			eng, err := core.NewEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				res, err := eng.Run(a)
				if err != nil {
					b.Fatal(err)
				}
				entries := 0
				for _, it := range res.History {
					entries += it.GossipEntries
				}
				b.ReportMetric(float64(entries), "payload-entries")
				b.ReportMetric(res.FinalImbalance, "final-I")
			}
		})
	}
}

// BenchmarkAblationCommBias sweeps the communication-aware extension's
// bias on a clique workload: remote volume vs imbalance.
func BenchmarkAblationCommBias(b *testing.B) {
	const cliques, size, ranks = 40, 6, 32
	mk := func() (*core.Assignment, *core.CommGraph) {
		a := core.NewAssignment(ranks)
		g := core.NewCommGraph(cliques * size)
		for c := 0; c < cliques; c++ {
			var ids []core.TaskID
			for i := 0; i < size; i++ {
				ids = append(ids, a.Add(0.3+float64((c*size+i)%10)/10, core.Rank(c%3)))
			}
			for i := range ids {
				g.Connect(ids[i], ids[(i+1)%size], 2)
			}
		}
		return a, g
	}
	for _, bias := range []float64{0, 0.5, 0.9} {
		b.Run(fmt.Sprintf("bias=%.1f", bias), func(b *testing.B) {
			cfg := core.Tempered()
			cfg.Trials, cfg.Iterations = 3, 5
			cfg.CommBias = bias
			eng, err := core.NewEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				a, g := mk()
				res, err := eng.RunWithComm(a, g)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.RemoteVolumeAfter, "remote-volume")
				b.ReportMetric(res.FinalImbalance, "final-I")
			}
		})
	}
}

// BenchmarkAblationLBFrequency sweeps the rebalancing interval on the
// EMPIRE-like run — the §IV-A trade-off between the cost of running the
// balancer and the staleness of the distribution it leaves behind.
func BenchmarkAblationLBFrequency(b *testing.B) {
	for _, period := range []int{10, 25, 50, 100, 300} {
		b.Run(fmt.Sprintf("period=%d", period), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := empire.Medium()
				cfg.LBPeriod = period
				tr := &sim.Tracker{
					Name: "tempered", AMT: true,
					Strategy: temperedlb.NewTemperedLBWith(quickTweak(core.Tempered())),
				}
				if _, err := sim.RunTrackers(cfg, []*sim.Tracker{tr}); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(tr.Breakdown.TTotal, "t_total")
				b.ReportMetric(tr.Breakdown.TLB, "t_lb")
			}
		})
	}
}

// BenchmarkPersistenceSensitivity quantifies the principle of
// persistence (§III-B): every LB decision is computed from the finished
// phase's loads; as phase-to-phase correlation rho drops, the stale
// decision decays and efficiency falls toward the static mapping's.
func BenchmarkPersistenceSensitivity(b *testing.B) {
	spec := workload.Spec{
		NumRanks: 24, NumTasks: 360,
		Placement: workload.PlaceClustered, LoadedRanks: 3,
		Loads: workload.LoadUniform, Seed: 1,
	}
	for _, rho := range []float64{1.0, 0.95, 0.8, 0.5, 0.0} {
		b.Run(fmt.Sprintf("rho=%.2f", rho), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := workload.Generate(spec)
				if err != nil {
					b.Fatal(err)
				}
				ev, err := workload.NewEvolver(a, rho, 0.4, 2)
				if err != nil {
					b.Fatal(err)
				}
				cfg := core.Tempered()
				cfg.Trials, cfg.Iterations = 2, 4
				cfg.Rounds, cfg.Fanout = 4, 3
				res, err := lbaf.RunPhaseStudy(a, ev, tempered.New(cfg), 60, 5)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Efficiency(), "efficiency")
				b.ReportMetric(res.Speedup(), "speedup-vs-static")
			}
		})
	}
}

// BenchmarkOrderingsMicro measures the pure ordering computations of
// Algorithms 4-6 on a 10k-task list.
func BenchmarkOrderingsMicro(b *testing.B) {
	tasks := make([]core.Task, 10_000)
	for i := range tasks {
		tasks[i] = core.Task{ID: core.TaskID(i), Load: float64((i*2654435761)%1000) / 100}
	}
	total := 0.0
	for _, task := range tasks {
		total += task.Load
	}
	ave := total / 400
	for _, ord := range []core.Ordering{core.OrderArbitrary, core.OrderLoadIntensive, core.OrderFewestMigrations, core.OrderLightest} {
		b.Run(ord.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.OrderTasks(tasks, ave, total, ord)
			}
		})
	}
}

// BenchmarkStrategies compares one full rebalance of each strategy on
// the same skewed workload.
func BenchmarkStrategies(b *testing.B) {
	spec := workload.Spec{
		NumRanks: 128, NumTasks: 3000,
		Placement: workload.PlaceClustered, LoadedRanks: 8,
		Loads: workload.LoadMixture, HeavyFraction: 0.2, Seed: 1,
	}
	a, err := workload.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	strategies := []temperedlb.Strategy{
		temperedlb.NewGreedyLB(),
		temperedlb.NewHierLB(4),
		temperedlb.NewRefineLB(),
		temperedlb.NewGrapevineLB(),
		temperedlb.NewTemperedLB(),
	}
	for _, s := range strategies {
		b.Run(s.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				plan, err := s.Rebalance(a)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(plan.FinalImbalance, "final-I")
			}
		})
	}
}

// BenchmarkDistributedLB measures the fully distributed protocol on the
// real AMT runtime (goroutine ranks, live termination detection).
func BenchmarkDistributedLB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rt := temperedlb.NewRuntime(16)
		h := temperedlb.RegisterLBHandlers(rt, 1)
		rt.Run(func(rc *temperedlb.RankContext) {
			loads := map[temperedlb.ObjectID]float64{}
			if rc.Rank() < 2 {
				for j := 0; j < 64; j++ {
					id := rc.CreateObject(j)
					loads[id] = 0.5 + float64(j%7)/7
				}
			}
			rc.Barrier()
			cfg := temperedlb.Tempered()
			cfg.Trials, cfg.Iterations, cfg.Rounds = 2, 3, 4
			if _, err := temperedlb.RunDistributedLB(rc, h, cfg, loads); err != nil {
				b.Error(err)
			}
		})
	}
}

// BenchmarkEngineScaling measures one full TemperedLB invocation as the
// rank count grows with constant tasks-per-overloaded-rank, the
// scalability axis of §IV.
func BenchmarkEngineScaling(b *testing.B) {
	for _, p := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("ranks=%d", p), func(b *testing.B) {
			spec := workload.VBCase(1)
			spec.NumRanks = p
			spec.LoadedRanks = p / 64
			spec.NumTasks = p * 4
			a, err := workload.Generate(spec)
			if err != nil {
				b.Fatal(err)
			}
			cfg := core.Tempered()
			cfg.Trials, cfg.Iterations = 1, 2
			cfg.Rounds = 3
			eng, err := core.NewEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Run(a)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.FinalImbalance, "final-I")
			}
		})
	}
}

// BenchmarkDistributedScaling measures a full distributed LB invocation
// on the real runtime (goroutine ranks, live termination detection) as
// the rank count grows, up to the paper's §V-B scale of 4096 ranks.
func BenchmarkDistributedScaling(b *testing.B) {
	for _, n := range []int{8, 32, 128, 512, 1024, 4096} {
		b.Run(fmt.Sprintf("ranks=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt := temperedlb.NewRuntime(n)
				h := temperedlb.RegisterLBHandlers(rt, 1)
				rt.Run(func(rc *temperedlb.RankContext) {
					loads := map[temperedlb.ObjectID]float64{}
					if int(rc.Rank()) < n/8 {
						for j := 0; j < 48; j++ {
							id := rc.CreateObject(j)
							loads[id] = 0.5 + float64(j%7)/7
						}
					}
					rc.Barrier()
					cfg := temperedlb.Tempered()
					cfg.Trials, cfg.Iterations, cfg.Rounds = 2, 3, 3
					if _, err := temperedlb.RunDistributedLB(rc, h, cfg, loads); err != nil {
						b.Error(err)
					}
				})
			}
		})
	}
}
