package temperedlb_test

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"temperedlb"
)

// TestPublicAPIEndToEnd drives the whole curated surface: workload
// generation, every strategy constructor, the engine, the metric
// helpers, and the runtime wrappers.
func TestPublicAPIEndToEnd(t *testing.T) {
	spec := temperedlb.VBWorkload(1)
	spec.NumRanks = 128
	spec.LoadedRanks = 4
	spec.NumTasks = 400
	a, err := temperedlb.GenerateWorkload(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Imbalance() < 5 {
		t.Fatalf("workload not skewed: %g", a.Imbalance())
	}

	strategies := []temperedlb.Strategy{
		temperedlb.NewTemperedLB(),
		temperedlb.NewGrapevineLB(),
		temperedlb.NewGreedyLB(),
		temperedlb.NewHierLB(4),
		temperedlb.NewRefineLB(),
	}
	for _, s := range strategies {
		plan, err := s.Rebalance(a)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if plan.FinalImbalance > plan.InitialImbalance {
			t.Errorf("%s worsened imbalance", s.Name())
		}
		if s.Name() == "" {
			t.Error("empty strategy name")
		}
	}
}

func TestPublicAPIEngineWithCustomConfig(t *testing.T) {
	cfg := temperedlb.Tempered()
	cfg.Order = temperedlb.OrderLightest
	cfg.Trials, cfg.Iterations = 2, 3
	cfg.Criterion = temperedlb.CriterionRelaxed
	cfg.CMF = temperedlb.CMFModified
	eng, err := temperedlb.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := temperedlb.NewAssignment(16)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		a.Add(rng.Float64(), temperedlb.Rank(rng.Intn(2)))
	}
	res, err := eng.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalImbalance >= res.InitialImbalance {
		t.Errorf("no improvement: %+v", res)
	}
}

func TestPublicAPIParseOrdering(t *testing.T) {
	ord, err := temperedlb.ParseOrdering("lightest")
	if err != nil || ord != temperedlb.OrderLightest {
		t.Errorf("ParseOrdering: %v %v", ord, err)
	}
	if _, err := temperedlb.ParseOrdering("nope"); err == nil {
		t.Error("bad ordering accepted")
	}
}

func TestPublicAPIWorkloadModels(t *testing.T) {
	for _, lm := range []struct {
		name string
		m    temperedlb.WorkloadSpec
	}{
		{"uniform", temperedlb.WorkloadSpec{NumRanks: 8, NumTasks: 40, Placement: temperedlb.PlaceUniform, Loads: temperedlb.LoadUniform, Seed: 1}},
		{"skewed-exp", temperedlb.WorkloadSpec{NumRanks: 8, NumTasks: 40, Placement: temperedlb.PlaceSkewed, Loads: temperedlb.LoadExponential, Seed: 2}},
		{"clustered-unit", temperedlb.WorkloadSpec{NumRanks: 8, NumTasks: 40, Placement: temperedlb.PlaceClustered, LoadedRanks: 2, Loads: temperedlb.LoadUnit, Seed: 3}},
		{"mixture", temperedlb.WorkloadSpec{NumRanks: 8, NumTasks: 40, Placement: temperedlb.PlaceClustered, LoadedRanks: 2, Loads: temperedlb.LoadMixture, HeavyFraction: 0.3, Seed: 4}},
	} {
		a, err := temperedlb.GenerateWorkload(lm.m)
		if err != nil {
			t.Errorf("%s: %v", lm.name, err)
			continue
		}
		if a.NumTasks() != 40 {
			t.Errorf("%s: %d tasks", lm.name, a.NumTasks())
		}
	}
}

// TestPublicAPIRuntime exercises the runtime surface: collections,
// phases, the load model, collectives and the distributed balancer.
func TestPublicAPIRuntime(t *testing.T) {
	const hWork temperedlb.HandlerID = 10
	rt := temperedlb.NewRuntime(6)
	lbh := temperedlb.RegisterLBHandlers(rt, 20)
	rt.RegisterObject(hWork, func(rc *temperedlb.RankContext, obj temperedlb.ObjectID, state any, from temperedlb.Rank, data any) {
		// no-op
	})
	var mu sync.Mutex
	finals := map[temperedlb.Rank]float64{}
	rt.Run(func(rc *temperedlb.RankContext) {
		col := rc.CreateCollection(1, 24, func(i int) any { return i })
		model := temperedlb.NewLoadModel(1)
		rc.Barrier()
		// Two phases of uneven work: rank 0's elements cost 10x.
		for phase := 0; phase < 2; phase++ {
			rc.PhaseBegin()
			for _, idx := range col.LocalIndices(rc) {
				w := 1.0
				if rc.Rank() == 0 {
					w = 10
				}
				rc.RecordWork(col.Element(idx), w)
			}
			model.Observe(rc.PhaseEnd())
			rc.Barrier()
		}
		cfg := temperedlb.Tempered()
		cfg.Trials, cfg.Iterations, cfg.Rounds = 2, 3, 3
		loads := map[temperedlb.ObjectID]float64{}
		for _, idx := range col.LocalIndices(rc) {
			loads[col.Element(idx)] = model.Predict(col.Element(idx))
		}
		res, err := temperedlb.RunDistributedLB(rc, lbh, cfg, loads)
		if err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		finals[rc.Rank()] = res.FinalImbalance
		mu.Unlock()
		sum := rc.AllReduce(float64(len(col.LocalIndices(rc))), temperedlb.ReduceSum)
		if sum != 24 {
			t.Errorf("collection census %g", sum)
		}
	})
	for r, f := range finals {
		if f >= finals[0]+1e-9 || f <= finals[0]-1e-9 {
			t.Errorf("rank %d disagrees on final I: %g vs %g", r, f, finals[0])
		}
	}
}

// TestPublicAPIObservability exercises the tracing and metrics surface:
// a traced distributed LB run exporting to every format.
func TestPublicAPIObservability(t *testing.T) {
	rec := temperedlb.NewTraceRecorder()
	rt := temperedlb.NewRuntime(8, temperedlb.WithTracer(rec), temperedlb.WithMetrics())
	lbh := temperedlb.RegisterLBHandlers(rt, 20)
	rt.Run(func(rc *temperedlb.RankContext) {
		loads := map[temperedlb.ObjectID]float64{}
		if rc.Rank() == 0 {
			for i := 0; i < 16; i++ {
				id := rc.CreateObject(i)
				loads[id] = 1
			}
		}
		rc.Barrier()
		cfg := temperedlb.Tempered()
		cfg.Trials, cfg.Iterations, cfg.Rounds = 2, 2, 3
		res, err := temperedlb.RunDistributedLB(rc, lbh, cfg, loads)
		if err != nil {
			t.Error(err)
			return
		}
		if rc.Rank() == 0 {
			if len(res.History) != 4 {
				t.Errorf("history rows = %d", len(res.History))
			}
			if res.ElapsedSeconds <= 0 {
				t.Errorf("elapsed = %g", res.ElapsedSeconds)
			}
		}
	})
	if rec.Len() == 0 {
		t.Fatal("no events recorded")
	}
	events := rec.Events()
	var buf bytes.Buffer
	for name, write := range map[string]func() error{
		"chrome": func() error { return temperedlb.WriteChromeTrace(&buf, events) },
		"csv":    func() error { return temperedlb.WriteTraceCSV(&buf, events) },
		"json":   func() error { return temperedlb.WriteTraceJSON(&buf, events) },
		"prom":   func() error { return temperedlb.WritePrometheus(&buf, rt.Metrics()) },
	} {
		buf.Reset()
		if err := write(); err != nil {
			t.Errorf("%s export: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s export empty", name)
		}
	}
	if got := rt.Metrics().Counter("amt_epochs_total").Value(); got == 0 {
		t.Error("amt_epochs_total = 0")
	}
}

// TestPublicAPISyncEngineTracer pins Config.Tracer on the synchronous
// engine: lb.run and lb.iteration events with populated ElapsedSeconds.
func TestPublicAPISyncEngineTracer(t *testing.T) {
	spec := temperedlb.VBWorkload(3)
	spec.NumRanks, spec.LoadedRanks, spec.NumTasks = 64, 2, 200
	a, err := temperedlb.GenerateWorkload(spec)
	if err != nil {
		t.Fatal(err)
	}
	rec := temperedlb.NewTraceRecorder()
	cfg := temperedlb.Tempered()
	cfg.Trials, cfg.Iterations = 2, 3
	cfg.Tracer = rec
	eng, err := temperedlb.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	iters := 0
	for _, e := range rec.Events() {
		if e.Type == temperedlb.EvIterEnd {
			iters++
		}
	}
	if iters != 6 {
		t.Errorf("lb.iteration end events = %d, want 6", iters)
	}
	for i, h := range res.History {
		if h.ElapsedSeconds <= 0 {
			t.Errorf("history[%d].ElapsedSeconds = %g", i, h.ElapsedSeconds)
		}
	}
}
