package temperedlb

import (
	"temperedlb/internal/amt"
	"temperedlb/internal/comm"
	"temperedlb/internal/lb/tempered"
)

// AMT runtime surface: logical ranks, active messages, epochs under
// distributed termination detection, collectives, and migratable
// objects — the substrate the distributed balancer runs on.
type (
	// Runtime owns the transport and handler registries.
	Runtime = amt.Runtime
	// RankContext is a logical rank's handle inside Runtime.Run.
	RankContext = amt.Context
	// HandlerID names a registered active-message handler.
	HandlerID = amt.HandlerID
	// ObjectID identifies a migratable object.
	ObjectID = amt.ObjectID
	// PhaseStats is one rank's per-phase task instrumentation.
	PhaseStats = amt.PhaseStats
	// Collection is a distributed indexed array of migratable objects
	// (vt's collection concept); create with RankContext.CreateCollection.
	Collection = amt.Collection
	// CollectionID names a collection; all ranks must agree on it.
	CollectionID = amt.CollectionID
	// LoadModel predicts next-phase loads from phase observations under
	// the principle of persistence.
	LoadModel = amt.LoadModel
	// ReduceOp selects the AllReduce combiner.
	ReduceOp = amt.ReduceOp
	// LBHandlers bundles the distributed balancer's active-message
	// handlers; register once before Runtime.Run.
	LBHandlers = tempered.Handlers
	// DistributedResult reports a distributed LB invocation.
	DistributedResult = tempered.DistResult
	// FaultSpec describes deterministic transport fault injection — drop
	// and duplication probabilities, delay windows, per-rank stragglers —
	// installed with Runtime.SetFaults before Run.
	FaultSpec = comm.FaultSpec
	// FaultStats reports a fault plan's injections and the runtime's
	// recovery work; read with Runtime.FaultStats.
	FaultStats = amt.FaultStats
	// Transport is the pluggable message substrate underneath the
	// runtime: the in-memory network by default, or a socket transport
	// from internal/comm/wire hosting one slice of a multi-process job.
	Transport = comm.Transport
	// WireStats are a socket transport's cumulative frame, byte and
	// connection counters (zero-valued on the in-memory transport).
	WireStats = comm.WireStats
)

// Reduction operators.
const (
	ReduceSum = amt.ReduceSum
	ReduceMax = amt.ReduceMax
	ReduceMin = amt.ReduceMin
)

// NewRuntime creates an AMT runtime over n logical ranks, each driven by
// its own goroutine once Run is called. Options attach observability
// (WithTracer for protocol event tracing, WithMetrics for the counter/
// histogram registry) and tune the collective tree (WithFanout).
func NewRuntime(n int, opts ...RuntimeOption) *Runtime { return amt.New(n, opts...) }

// WithFanout sets the arity k ≥ 2 of the runtime's k-ary collective
// tree (default 4): every barrier, all-reduce and all-gather is a
// reduce up and a broadcast down this tree, costing each rank at most
// 2k+2 messages regardless of the rank count, with combine order fixed
// by the topology so floating-point reductions are bit-deterministic.
func WithFanout(k int) RuntimeOption { return amt.WithFanout(k) }

// WithTransport substitutes the runtime's message transport, e.g. a
// TCP or Unix-socket transport hosting this process's rank range of a
// multi-process job (see cmd/lbnode). The default is the in-memory
// network spanning every rank. The transport's total rank count must
// match the runtime's.
func WithTransport(t Transport) RuntimeOption { return amt.WithTransport(t) }

// ParseFaultSpec parses a comma-separated fault directive such as
// "seed=7,drop=0.01,dup=0.01,delay=5ms,slow=3:2ms" into a FaultSpec.
// See internal/comm.ParseFaultSpec for the full key set.
func ParseFaultSpec(s string) (FaultSpec, error) { return comm.ParseFaultSpec(s) }

// NewLoadModel creates a persistence-based load predictor with
// smoothing factor alpha in (0,1]; alpha = 1 is pure persistence.
func NewLoadModel(alpha float64) *LoadModel { return amt.NewLoadModel(alpha) }

// RegisterLBHandlers installs the distributed balancer's handlers on the
// runtime, claiming handler ids base, base+1 and base+2. Call before
// Runtime.Run and pass the result to RunDistributedLB on every rank.
func RegisterLBHandlers(rt *Runtime, base HandlerID) *LBHandlers {
	return tempered.RegisterHandlers(rt, base)
}

// RunDistributedLB executes the full TemperedLB protocol collectively:
// gossip epochs as real active messages under termination detection,
// concurrent transfer decisions, refinement over trials and iterations,
// and a commit epoch that migrates the chosen objects. loads maps each
// of the calling rank's local objects to its instrumented load (e.g.
// from PhaseStats.Loads).
func RunDistributedLB(rc *RankContext, h *LBHandlers, cfg Config, loads map[ObjectID]float64) (DistributedResult, error) {
	return tempered.RunDistributed(rc, h, cfg, loads)
}
