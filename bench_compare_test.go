// Benchmark regression gate: `make bench-compare` (or BENCH_COMPARE=1
// go test -run TestBenchCompare) reruns the BENCH_lb.json suite through
// testing.Benchmark and fails if any row's ns/op or B/op regressed more
// than the tolerance (default 20%, override with BENCH_TOLERANCE=0.30)
// against the committed file. Rows present in only one of the two sets
// are reported but do not fail the gate — adding a benchmark must not
// require regenerating the trajectory in the same commit.
package temperedlb_test

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"testing"
)

// TestBenchCompare diffs fresh measurements against BENCH_lb.json.
// Skipped unless BENCH_COMPARE is set: it reruns the full benchmark
// suite and must not slow down the tier-1 tests.
func TestBenchCompare(t *testing.T) {
	if os.Getenv("BENCH_COMPARE") == "" {
		t.Skip("set BENCH_COMPARE=1 (or run `make bench-compare`) to diff against BENCH_lb.json")
	}
	tolerance := 0.20
	if s := os.Getenv("BENCH_TOLERANCE"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 {
			t.Fatalf("bad BENCH_TOLERANCE %q", s)
		}
		tolerance = v
	}

	raw, err := os.ReadFile("BENCH_lb.json")
	if err != nil {
		t.Fatal(err)
	}
	var committed benchFile
	if err := json.Unmarshal(raw, &committed); err != nil {
		t.Fatal(err)
	}
	baseline := map[string]benchRecord{}
	for _, r := range committed.Benchmarks {
		baseline[r.Name] = r
	}

	check := func(name, unit string, got, want int64) {
		limit := float64(want) * (1 + tolerance)
		delta := 100 * (float64(got)/float64(want) - 1)
		line := fmt.Sprintf("%-34s %-8s %12d committed %12d measured (%+.1f%%)",
			name, unit, want, got, delta)
		if float64(got) > limit {
			t.Errorf("REGRESSION %s exceeds +%.0f%% tolerance", line, tolerance*100)
		} else {
			t.Log(line)
		}
	}

	seen := map[string]bool{}
	for _, bm := range benchJSONSuite() {
		want, ok := baseline[bm.name]
		if !ok {
			t.Logf("%-34s not in BENCH_lb.json; run `make bench-json` to record it", bm.name)
			continue
		}
		seen[bm.name] = true
		fn := bm.fn
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		check(bm.name, "ns/op", res.NsPerOp(), want.NsPerOp)
		check(bm.name, "B/op", res.AllocedBytesPerOp(), want.BytesPerOp)
	}
	for name := range baseline {
		if !seen[name] {
			t.Logf("%-34s in BENCH_lb.json but not in the suite; stale row?", name)
		}
	}
}
