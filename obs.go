package temperedlb

import (
	"io"

	"temperedlb/internal/amt"
	"temperedlb/internal/obs"
)

// Observability surface: protocol-level tracing and metrics for the
// distributed stack. Attach a tracer and/or metrics registry at runtime
// construction; with neither attached, the instrumented paths cost a
// single nil pointer comparison.
//
//	rec := temperedlb.NewTraceRecorder()
//	rt := temperedlb.NewRuntime(16, temperedlb.WithTracer(rec), temperedlb.WithMetrics())
//	... run ...
//	temperedlb.WriteChromeTrace(f, rec.Events()) // open in Perfetto
//	temperedlb.WritePrometheus(os.Stdout, rt.Metrics())
type (
	// Tracer consumes protocol trace events; implementations must be
	// safe for concurrent Emit.
	Tracer = obs.Tracer
	// TraceEvent is one protocol event (epoch, gossip message, transfer
	// proposal, migration, collective, ...).
	TraceEvent = obs.Event
	// TraceEventType discriminates trace events.
	TraceEventType = obs.EventType
	// TraceRecorder is the standard collecting Tracer.
	TraceRecorder = obs.Recorder
	// Metrics is the lock-cheap counter/gauge/histogram registry
	// returned by Runtime.Metrics.
	Metrics = obs.Metrics
	// Stream is the live frame publisher: a fixed ring of Snapshot
	// frames plus drop-oldest subscribers, served over HTTP by
	// ServeObservability.
	Stream = obs.Stream
	// Snapshot is one frame of the observability stream.
	Snapshot = obs.Snapshot
	// RuntimeOption configures NewRuntime.
	RuntimeOption = amt.Option
)

// Trace event types.
const (
	EvEpochOpen           = obs.EvEpochOpen
	EvEpochClose          = obs.EvEpochClose
	EvHandler             = obs.EvHandler
	EvInformSend          = obs.EvInformSend
	EvInformRecv          = obs.EvInformRecv
	EvTransferPropose     = obs.EvTransferPropose
	EvTransferReject      = obs.EvTransferReject
	EvTransferNoCandidate = obs.EvTransferNoCandidate
	EvTransferNack        = obs.EvTransferNack
	EvTokenRound          = obs.EvTokenRound
	EvMigration           = obs.EvMigration
	EvPhaseBegin          = obs.EvPhaseBegin
	EvPhaseEnd            = obs.EvPhaseEnd
	EvCollective          = obs.EvCollective
	EvIterBegin           = obs.EvIterBegin
	EvIterEnd             = obs.EvIterEnd
	EvLBBegin             = obs.EvLBBegin
	EvLBEnd               = obs.EvLBEnd
)

// NewTraceRecorder creates an empty event recorder; its clock starts
// now.
func NewTraceRecorder() *TraceRecorder { return obs.NewRecorder() }

// WithTracer attaches a tracer to a new runtime; every epoch, handler
// dispatch, collective, migration, termination-token round, phase
// boundary and distributed-balancer protocol step is emitted to it.
func WithTracer(t Tracer) RuntimeOption { return amt.WithTracer(t) }

// WithMetrics enables the runtime's metrics registry and transport byte
// accounting; read the registry with Runtime.Metrics after (or during)
// Run.
func WithMetrics() RuntimeOption { return amt.WithMetrics() }

// WriteChromeTrace exports events as Chrome trace_event JSON — load the
// file in Perfetto (ui.perfetto.dev) or chrome://tracing; each rank
// appears as its own track.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	return obs.WriteChromeTrace(w, events)
}

// WritePrometheus exports a metrics registry in Prometheus text
// exposition format.
func WritePrometheus(w io.Writer, m *Metrics) error { return obs.WritePrometheus(w, m) }

// WriteTraceCSV exports events as a flat CSV table.
func WriteTraceCSV(w io.Writer, events []TraceEvent) error {
	return obs.WriteEventsCSV(w, events)
}

// WriteTraceJSON exports events as a JSON array.
func WriteTraceJSON(w io.Writer, events []TraceEvent) error {
	return obs.WriteEventsJSON(w, events)
}

// NewStream creates a frame stream with the given ring capacity (<= 0
// selects the default).
func NewStream(capacity int) *Stream { return obs.NewStream(capacity) }

// WithStream attaches a frame stream to a new runtime: the distributed
// balancer publishes one frame per protocol step (per-rank loads,
// imbalance, traffic and fault counters) from rank 0.
func WithStream(s *Stream) RuntimeOption { return amt.WithStream(s) }

// ServeObservability starts an HTTP server on addr exposing the stream
// (NDJSON at /stream and /frames, latest frame at /snapshot), the
// metrics registry at /metrics, and net/http/pprof under /debug/pprof/.
// It returns the server and the bound address (addr may use port 0).
// Either stream or metrics may be nil; the matching endpoints 404.
func ServeObservability(addr string, stream *Stream, metrics *Metrics) (io.Closer, string, error) {
	srv, bound, err := obs.StartServer(addr, stream, metrics)
	if err != nil {
		return nil, "", err
	}
	return srv, bound, nil
}

// WriteSnapshots writes frames as NDJSON — the `lbtop -replay` format.
func WriteSnapshots(w io.Writer, frames []Snapshot) error {
	return obs.WriteSnapshots(w, frames)
}
