GO ?= go

.PHONY: build test vet lint lint-fix race chaos storm obs-smoke wire-smoke serve-smoke check bench bench-json bench-compare

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: the determinism and concurrency
# contracts of DESIGN.md §9, enforced by cmd/lbvet, plus a gofmt gate.
lint:
	$(GO) run ./cmd/lbvet ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; fi

# Apply every machine-applicable suggested fix (clock-funnel rewrites,
# stale-directive deletions), then report whatever remains. Idempotent:
# a second run applies nothing (enforced by TestFixIdempotent).
lint-fix:
	$(GO) run ./cmd/lbvet -fix ./...

# Full race-detector pass; includes the obs-instrumented chaos tests,
# which is how we prove the tracer and metrics add no data races.
race:
	$(GO) test -race ./...

# The fault-injection suite under the race detector: seeded drop/dup/
# delay/straggler plans against the transport, the ack/retry layer, and
# the distributed balancer end-to-end (including the faulted-equals-
# fault-free and delay-window bit-determinism checks, and the
# 1024-rank collective storm).
chaos:
	$(GO) test -race -run 'Chaos|Fault|GossipDrop|Determinism' ./...

# Just the paper-scale collective stress: 1024 ranks storm the k-ary
# reduction tree (barriers, vector reduces, a scalar max) interleaved
# with epoch traffic under a 10% drop/dup plan with delayed delivery,
# race detector on.
storm:
	$(GO) test -race -count=1 -run 'TestChaosTreeCollectiveStorm1024$$' ./internal/amt/

# Observability smoke: record frames from a short distributed run on
# the real runtime, replay them through the lbtop renderer, and assert
# the layout golden (internal/dash/testdata/obs_smoke.golden). Rerun
# with -update-golden after intentional schema or layout changes.
obs-smoke:
	$(GO) test -count=1 -run 'TestObsSmoke|TestRenderGolden' ./internal/dash/

# Wire smoke: a real 2-process Unix-socket job (two lbnode processes,
# static peers file, OS sockets, separate address spaces) must produce
# the same protocol-determined DistResult as the in-memory
# single-process run — the multi-process determinism claim of
# DESIGN.md §10, checked end to end with the shipped binaries.
# Rounds is pinned to 1: see the determinism argument in §10.
WIRE_SMOKE_ARGS = -ranks 12 -tasks 60 -seed 3 -rounds 1
wire-smoke:
	@rm -rf .wire-smoke && mkdir .wire-smoke
	$(GO) build -o .wire-smoke/ ./cmd/lbnode ./cmd/lbplay
	./.wire-smoke/lbplay -distributed $(WIRE_SMOKE_ARGS) -result .wire-smoke/memory.json >/dev/null
	@printf '0 .wire-smoke/n0.sock\n1 .wire-smoke/n1.sock\n' > .wire-smoke/peers
	./.wire-smoke/lbnode -node 1 -nodes 2 -transport unix -listen .wire-smoke/n1.sock \
		-peers .wire-smoke/peers $(WIRE_SMOKE_ARGS) >/dev/null & \
	./.wire-smoke/lbnode -node 0 -nodes 2 -transport unix -listen .wire-smoke/n0.sock \
		-peers .wire-smoke/peers $(WIRE_SMOKE_ARGS) -result .wire-smoke/wire.json >/dev/null && wait
	diff .wire-smoke/memory.json .wire-smoke/wire.json
	@rm -rf .wire-smoke
	@echo "wire-smoke: 2-process unix-socket DistResult identical to in-memory"

# Serve smoke: a short deterministic run of the online balancer
# service must reproduce the committed trigger-decision log byte for
# byte (cmd/lbserve/testdata/serve_smoke.golden), and the same run over
# Unix- and TCP-socket clusters must match the in-memory log exactly —
# the rank-identical trigger claim of DESIGN.md §11, checked with the
# shipped binary. Regenerate the golden with lbserve after intentional
# format or scenario changes.
SERVE_SMOKE_ARGS = -scenario burst -ranks 8 -phases 24 -items 48 -seed 7 -trigger forecast
serve-smoke:
	@rm -rf .serve-smoke && mkdir .serve-smoke
	$(GO) build -o .serve-smoke/ ./cmd/lbserve
	./.serve-smoke/lbserve $(SERVE_SMOKE_ARGS) > .serve-smoke/memory.log
	diff cmd/lbserve/testdata/serve_smoke.golden .serve-smoke/memory.log
	./.serve-smoke/lbserve $(SERVE_SMOKE_ARGS) -transport unix -nodes 3 > .serve-smoke/unix.log
	diff .serve-smoke/memory.log .serve-smoke/unix.log
	./.serve-smoke/lbserve $(SERVE_SMOKE_ARGS) -transport tcp -nodes 2 > .serve-smoke/tcp.log
	diff .serve-smoke/memory.log .serve-smoke/tcp.log
	@rm -rf .serve-smoke
	@echo "serve-smoke: trigger log matches golden and is identical on memory/unix/tcp"

# The CI gate: static analysis (go vet and the project's lbvet
# analyzers), the race-enabled suite, the chaos suite (which includes
# the storm), the observability, wire and serve smokes, and the
# benchmark regression diff against the committed trajectory.
check: vet lint race chaos obs-smoke wire-smoke serve-smoke bench-compare

bench:
	$(GO) test -bench . -benchmem ./...

# Regenerate BENCH_lb.json, the machine-readable perf trajectory
# (ns/op, B/op, allocs/op per recorded configuration).
bench-json:
	BENCH_JSON=1 $(GO) test -run TestWriteBenchJSON -v .

# Rerun the BENCH_lb.json suite and fail on >20% ns/op or B/op
# regression against the committed file (override the tolerance with
# BENCH_TOLERANCE=0.30).
bench-compare:
	BENCH_COMPARE=1 $(GO) test -run TestBenchCompare -v .
