GO ?= go

.PHONY: build test vet race check bench bench-json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full race-detector pass; includes the obs-instrumented chaos tests,
# which is how we prove the tracer and metrics add no data races.
race:
	$(GO) test -race ./...

# The CI gate: static analysis plus the race-enabled suite.
check: vet race

bench:
	$(GO) test -bench . -benchmem ./...

# Regenerate BENCH_lb.json, the machine-readable perf trajectory
# (ns/op, B/op, allocs/op per recorded configuration).
bench-json:
	BENCH_JSON=1 $(GO) test -run TestWriteBenchJSON -v .
