GO ?= go

.PHONY: build test vet race chaos check bench bench-json bench-compare

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full race-detector pass; includes the obs-instrumented chaos tests,
# which is how we prove the tracer and metrics add no data races.
race:
	$(GO) test -race ./...

# The fault-injection suite under the race detector: seeded drop/dup/
# delay/straggler plans against the transport, the ack/retry layer, and
# the distributed balancer end-to-end (including the faulted-equals-
# fault-free determinism check).
chaos:
	$(GO) test -race -run 'Chaos|Fault|GossipDrop' ./...

# The CI gate: static analysis, the race-enabled suite, the chaos
# suite, and the benchmark regression diff against the committed
# trajectory.
check: vet race chaos bench-compare

bench:
	$(GO) test -bench . -benchmem ./...

# Regenerate BENCH_lb.json, the machine-readable perf trajectory
# (ns/op, B/op, allocs/op per recorded configuration).
bench-json:
	BENCH_JSON=1 $(GO) test -run TestWriteBenchJSON -v .

# Rerun the BENCH_lb.json suite and fail on >20% ns/op or B/op
# regression against the committed file (override the tolerance with
# BENCH_TOLERANCE=0.30).
bench-compare:
	BENCH_COMPARE=1 $(GO) test -run TestBenchCompare -v .
