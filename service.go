package temperedlb

import (
	"io"

	"temperedlb/internal/serve"
)

// Online balancer service surface: the layer that decides WHEN to
// rebalance — a phase loop over a deterministic scenario stream, a
// Holt level+trend load model, and pluggable invocation triggers
// including the forecast criterion of arXiv:2104.01688. See
// internal/serve for the determinism argument.
type (
	// ServiceConfig parameterizes one service run; identical on every
	// rank of the job.
	ServiceConfig = serve.Config
	// ServiceResult sums up a run: fire/skip counts, the cost
	// accounting, and the per-phase trigger-decision rows.
	ServiceResult = serve.Result
	// ScenarioSpec describes a deterministic workload stream (ramp,
	// diurnal, burst or churn).
	ScenarioSpec = serve.Spec
	// ScenarioKind selects the stream generator.
	ScenarioKind = serve.Kind
	// Scenario is the precomputed event stream.
	Scenario = serve.Scenario
	// TriggerSpec is a parseable trigger description; each rank builds
	// its own Trigger instance from it.
	TriggerSpec = serve.TriggerSpec
	// Trigger decides, per phase, whether to invoke the balancer.
	Trigger = serve.Trigger
	// TriggerSummary is the rank-identical phase view triggers consume.
	TriggerSummary = serve.Summary
	// ServiceTrace is the offline replay format for trigger tuning.
	ServiceTrace = serve.Trace
	// SimConfig are the offline replay knobs.
	SimConfig = serve.SimConfig
	// SimResult is one offline replay's cost accounting.
	SimResult = serve.SimResult
	// TuneCandidate is one grid point of a tuning sweep.
	TuneCandidate = serve.Candidate
)

// Scenario kinds.
const (
	ScenarioRamp    = serve.KindRamp
	ScenarioDiurnal = serve.KindDiurnal
	ScenarioBurst   = serve.KindBurst
	ScenarioChurn   = serve.KindChurn
)

// ParseScenarioKind parses ramp | diurnal | burst | churn.
func ParseScenarioKind(s string) (ScenarioKind, error) { return serve.ParseKind(s) }

// ParseTrigger parses a trigger directive: always, every:K,
// threshold:H, or forecast[:headroom=X].
func ParseTrigger(s string) (TriggerSpec, error) { return serve.ParseTrigger(s) }

// NewScenario builds the deterministic event stream for a spec.
func NewScenario(spec ScenarioSpec) (*Scenario, error) { return serve.NewScenario(spec) }

// RunService executes the balancer service on the calling rank: every
// phase folds scenario-driven observations into the load model, agrees
// on a summary collectively, and invokes the tempered protocol when
// the trigger fires. All ranks must call it collectively with
// identical cfg, after RegisterLBHandlers.
func RunService(rc *RankContext, h *LBHandlers, cfg ServiceConfig) (ServiceResult, error) {
	return serve.Run(rc, h, cfg)
}

// WriteServiceLog renders the rank-identical trigger-decision log —
// the artifact `make serve-smoke` diffs across transports and against
// its golden.
func WriteServiceLog(w io.Writer, cfg ServiceConfig, res ServiceResult) error {
	return serve.WriteLog(w, cfg, res)
}

// RecordServiceTrace renders a scenario into its replay trace.
func RecordServiceTrace(sc *Scenario) ServiceTrace { return serve.RecordTrace(sc) }

// SimulateTrace replays a trace against one trigger configuration
// under a greedy rebalance model and returns the cost accounting.
func SimulateTrace(tr ServiceTrace, ts TriggerSpec, sim SimConfig) (SimResult, error) {
	return serve.Simulate(tr, ts, sim)
}

// TuneTrigger grid-searches trigger parameters against a trace and
// returns the cheapest candidate plus the full sweep. families
// selects trigger families ("every", "threshold", "forecast"); nil
// sweeps all three.
func TuneTrigger(tr ServiceTrace, families []string, sim SimConfig) (TuneCandidate, []TuneCandidate, error) {
	return serve.Tune(tr, families, sim)
}
