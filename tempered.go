// Package temperedlb is a Go implementation of TemperedLB, the fully
// distributed gossip-based load balancer of Lifflander et al.,
// "Optimizing Distributed Load Balancing for Workloads with Time-Varying
// Imbalance" (IEEE CLUSTER 2021), together with everything the paper's
// evaluation depends on: the original GrapevineLB algorithm as a
// configuration, centralized (GreedyLB) and hierarchical (HierLB)
// baselines, an AMT runtime substrate with active messages, epochs under
// distributed termination detection and migratable objects, an
// EMPIRE-like particle-in-cell application with time-varying imbalance,
// and the analysis/experiment harnesses that regenerate the paper's
// tables and figures.
//
// # Quick start
//
// Build an overdecomposed workload, run the balancer, apply the moves:
//
//	a := temperedlb.NewAssignment(64)
//	for i := 0; i < 1000; i++ {
//		a.Add(load(i), temperedlb.Rank(i%4)) // clustered on 4 ranks
//	}
//	eng, _ := temperedlb.NewEngine(temperedlb.Tempered())
//	res, _ := eng.Run(a)
//	res.Apply(a) // a is now balanced; res.FinalImbalance tells how well
//
// The same decision logic runs fully distributed on the AMT runtime; see
// NewRuntime, RegisterLBHandlers and RunDistributedLB, or the pic2d
// example.
package temperedlb

import (
	"temperedlb/internal/core"
	"temperedlb/internal/lb"
	"temperedlb/internal/lb/greedy"
	"temperedlb/internal/lb/hier"
	"temperedlb/internal/lb/refine"
	"temperedlb/internal/lb/tempered"
	"temperedlb/internal/stats"
	"temperedlb/internal/workload"
)

// Core model types: ranks, tasks, and the task→rank distribution.
type (
	// Rank identifies a logical process.
	Rank = core.Rank
	// TaskID identifies a migratable task.
	TaskID = core.TaskID
	// Task pairs a task with its instrumented load.
	Task = core.Task
	// Assignment is the mutable task→rank distribution.
	Assignment = core.Assignment
	// Move relocates one task between ranks.
	Move = core.Move
)

// Algorithm configuration and the synchronous engine.
type (
	// Config holds every knob of the TemperedLB algorithm family.
	Config = core.Config
	// Criterion selects the transfer acceptance test.
	Criterion = core.Criterion
	// CMFKind selects the recipient-selection mass function.
	CMFKind = core.CMFKind
	// Ordering selects the task traversal order of the transfer stage.
	Ordering = core.Ordering
	// Engine runs the refinement loop over an Assignment.
	Engine = core.Engine
	// Result reports an Engine run.
	Result = core.Result
	// IterationStats is the per-iteration accounting of a run.
	IterationStats = core.IterationStats
)

// Enumeration values re-exported for configuration literals.
const (
	CriterionOriginal = core.CriterionOriginal
	CriterionRelaxed  = core.CriterionRelaxed

	CMFOriginal = core.CMFOriginal
	CMFModified = core.CMFModified

	OrderArbitrary        = core.OrderArbitrary
	OrderLoadIntensive    = core.OrderLoadIntensive
	OrderFewestMigrations = core.OrderFewestMigrations
	OrderLightest         = core.OrderLightest
)

// NewAssignment creates an empty assignment over numRanks ranks.
func NewAssignment(numRanks int) *Assignment { return core.NewAssignment(numRanks) }

// Grapevine returns the configuration matching the original GrapevineLB
// algorithm of Menon & Kalé (SC'13) as described in §IV-B of the paper.
func Grapevine() Config { return core.Grapevine() }

// Tempered returns the paper's TemperedLB configuration: relaxed
// criterion, modified CMF recomputed during transfers, Fewest Migrations
// ordering, 10 trials of 8 refinement iterations.
func Tempered() Config { return core.Tempered() }

// NewEngine validates the configuration and returns the synchronous
// engine (Algorithm 3 wrapping Algorithms 1 and 2).
func NewEngine(cfg Config) (*Engine, error) { return core.NewEngine(cfg) }

// ParseOrdering converts an ordering name ("arbitrary",
// "load-intensive", "fewest-migrations", "lightest") to its value.
func ParseOrdering(s string) (Ordering, error) { return core.ParseOrdering(s) }

// Imbalance computes the paper's metric I = l_max/l_ave − 1 over
// per-rank loads; 0 means perfectly balanced.
func Imbalance(rankLoads []float64) float64 { return stats.Imbalance(rankLoads) }

// Strategy-level API: pluggable balancers over an Assignment.
type (
	// Strategy is a load balancer; implementations must not mutate the
	// assignment they are given.
	Strategy = lb.Strategy
	// Plan is a strategy's proposed relocation set with cost accounting.
	Plan = lb.Plan
)

// NewTemperedLB returns the paper's TemperedLB as a Strategy.
func NewTemperedLB() Strategy { return tempered.NewTempered() }

// NewTemperedLBWith returns a TemperedLB Strategy with a custom
// configuration (e.g. a different ordering or criterion).
func NewTemperedLBWith(cfg Config) Strategy { return tempered.New(cfg) }

// NewGrapevineLB returns the original GrapevineLB as a Strategy.
func NewGrapevineLB() Strategy { return tempered.NewGrapevine() }

// NewGreedyLB returns the centralized LPT baseline.
func NewGreedyLB() Strategy { return greedy.New() }

// NewHierLB returns the hierarchical tree-based baseline with the given
// fanout (>= 2).
func NewHierLB(fanout int) Strategy { return hier.New(fanout) }

// NewRefineLB returns the incremental refinement baseline: it only
// peels work off overloaded ranks, minimizing migration volume.
func NewRefineLB() Strategy { return refine.New() }

// Communication-aware extension (the paper's §VII future work).
type (
	// CommGraph records inter-task communication volumes.
	CommGraph = core.CommGraph
	// CommEdge is one communication relationship of a task.
	CommEdge = core.CommEdge
)

// NewCommGraph creates an empty communication graph over numTasks
// tasks. Supply it to Engine.RunWithComm with Config.CommBias > 0 to
// steer tasks toward ranks hosting their communication partners.
func NewCommGraph(numTasks int) *CommGraph { return core.NewCommGraph(numTasks) }

// Workload generation for experiments and tests.
type (
	// WorkloadSpec describes a synthetic task distribution.
	WorkloadSpec = workload.Spec
)

// Workload placement and load-model selectors.
const (
	PlaceClustered = workload.PlaceClustered
	PlaceUniform   = workload.PlaceUniform
	PlaceSkewed    = workload.PlaceSkewed

	LoadUnit        = workload.LoadUnit
	LoadUniform     = workload.LoadUniform
	LoadExponential = workload.LoadExponential
	LoadMixture     = workload.LoadMixture
)

// GenerateWorkload builds the assignment described by the spec.
func GenerateWorkload(s WorkloadSpec) (*Assignment, error) { return workload.Generate(s) }

// VBWorkload returns the paper's §V-B analysis case: 10^4 tasks on 16 of
// 4096 ranks with a light/heavy load mixture, initial imbalance ≈ 280.
func VBWorkload(seed int64) WorkloadSpec { return workload.VBCase(seed) }
