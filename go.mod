module temperedlb

go 1.22
